// SybilRank (Cao, Sirivianos, Yang, Pregueiro — NSDI 2012): the distilled
// walk-based ranking defense. Trust is seeded at known-honest vertices and
// propagated by exactly O(log n) power-iteration steps of the random walk —
// *early termination* is the defense: honest vertices equalize within the
// mixing time of the honest region while trust leaks into the Sybil region
// only through attack edges. The final score is degree-normalized.
//
// SybilRank postdates the paper, but it is the cleanest expression of the
// principle the paper measures (walk-based trust bounded by mixing), so it
// completes the defense family implemented here.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sybil/attack.hpp"
#include "sybil/eval.hpp"

namespace sntrust {

struct SybilRankParams {
  /// Power-iteration steps; 0 = ceil(log2 n) (the protocol's choice).
  std::uint32_t iterations = 0;
  std::uint64_t seed = 1;  ///< unused (deterministic), kept for interface parity
};

struct SybilRankResult {
  /// Degree-normalized trust per vertex.
  std::vector<double> scores;
  /// Vertices by descending trust.
  Ranking ranking;
  std::uint32_t iterations_used = 0;
};

/// Propagates trust from `seeds` (each holding an equal share). Requires a
/// connected graph with >= 1 edge and at least one valid seed.
SybilRankResult run_sybilrank(const Graph& g,
                              const std::vector<VertexId>& seeds,
                              const SybilRankParams& params = {});

/// Cutoff evaluation (accept the top num_honest() of the ranking).
PairwiseEvaluation evaluate_sybilrank(const AttackedGraph& attacked,
                                      const std::vector<VertexId>& seeds,
                                      const SybilRankParams& params = {});

}  // namespace sntrust

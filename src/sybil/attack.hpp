// The Sybil attack model shared by all defenses (paper Sec. II, Table II):
// a Sybil region is attached to the honest social graph through a limited
// number of attack edges, because creating real social links is costly while
// creating Sybil identities is free.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// Where the attacker lands its attack edges (the paper's open problem of
/// formal attacker models, made concrete: the same edge budget placed with
/// increasing social intelligence).
enum class AttackStrategy {
  kRandom,        ///< uniformly random honest endpoints (Table II's model)
  kTargetHubs,    ///< endpoints drawn degree-proportionally (hub infiltration)
  kSingleRegion,  ///< all endpoints inside one BFS ball (community capture)
  kNearSeed,      ///< endpoints as close to a designated vertex as possible
};

struct AttackParams {
  /// Number of Sybil identities the attacker creates.
  VertexId num_sybils = 1000;
  /// Attack edges between honest and Sybil endpoints, placed per `strategy`.
  std::uint32_t attack_edges = 100;
  /// Edges per node of the scale-free topology the attacker wires internally
  /// (the attacker controls this region arbitrarily; a well-connected region
  /// is the strongest choice against random-walk defenses).
  VertexId sybil_internal_degree = 5;
  AttackStrategy strategy = AttackStrategy::kRandom;
  /// Focus vertex for kSingleRegion / kNearSeed (e.g. the defense's trusted
  /// node, for a worst-case placement).
  VertexId target = 0;
  std::uint64_t seed = 1;
};

/// Honest graph + Sybil region + attack edges, with ground-truth labels.
class AttackedGraph {
 public:
  /// `honest` must be connected with >= 2 vertices. Throws
  /// std::invalid_argument on bad parameters.
  AttackedGraph(const Graph& honest, const AttackParams& params);

  /// Combined graph: honest vertices keep ids [0, num_honest); Sybils occupy
  /// [num_honest, num_honest + num_sybils).
  const Graph& graph() const noexcept { return combined_; }

  VertexId num_honest() const noexcept { return num_honest_; }
  VertexId num_sybils() const noexcept { return num_sybils_; }
  std::uint32_t num_attack_edges() const noexcept { return attack_edges_; }

  bool is_sybil(VertexId v) const { return v >= num_honest_; }

  /// Honest endpoints of attack edges (with multiplicity).
  const std::vector<VertexId>& attack_endpoints() const noexcept {
    return attack_endpoints_;
  }

 private:
  Graph combined_;
  VertexId num_honest_ = 0;
  VertexId num_sybils_ = 0;
  std::uint32_t attack_edges_ = 0;
  std::vector<VertexId> attack_endpoints_;
};

}  // namespace sntrust

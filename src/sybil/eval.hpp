// Shared evaluation types and ranking utilities for the Sybil defenses.
//
// Viswanath et al. (SIGCOMM 2010) showed that the walk-based defenses all
// reduce to ranking vertices by how well-connected they are to the trusted
// vertex; the ranking utilities here quantify that observation (ablation A2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sybil/attack.hpp"

namespace sntrust {

/// Acceptance rates of a pairwise (verifier, suspect) defense.
struct PairwiseEvaluation {
  double honest_accept_fraction = 0.0;
  double sybils_per_attack_edge = 0.0;
  std::uint32_t honest_trials = 0;
  std::uint32_t sybil_trials = 0;
};

/// Vertices ordered from most to least trusted by a defense's score.
using Ranking = std::vector<VertexId>;

/// Ranking induced by descending `scores` (stable for ties).
Ranking ranking_from_scores(const std::vector<double>& scores);

/// Fraction of the top-k agreement between two rankings averaged over
/// k = step, 2*step, ..., n (a simple rank-overlap curve summary in [0,1]).
double ranking_overlap(const Ranking& a, const Ranking& b,
                       std::uint32_t step = 0);

/// Area under the ROC curve of a ranking against the Sybil ground truth:
/// 1.0 = all honest vertices ranked above all Sybils, 0.5 = random.
double ranking_auc(const Ranking& ranking, const AttackedGraph& attacked);

}  // namespace sntrust

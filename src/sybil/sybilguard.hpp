// SybilGuard (Yu, Kaminsky, Gibbons, Flaxman — SIGCOMM 2006): the first
// random-route Sybil defense, used here as the baseline the paper's related
// work compares against.
//
// Every vertex fixes a random permutation routing table; a verifier accepts
// a suspect when the verifier's random route (length w = Theta(sqrt(n log n)))
// intersects the suspect's route. Honest routes stay in the honest region
// w.h.p.; Sybil routes must cross an attack edge to intersect.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "markov/walker.hpp"
#include "sybil/attack.hpp"
#include "sybil/eval.hpp"

namespace sntrust {

struct SybilGuardParams {
  /// Route length; 0 means ceil(sqrt(n * log2(n))).
  std::uint32_t route_length = 0;
  std::uint64_t seed = 1;
};

class SybilGuard {
 public:
  SybilGuard(const Graph& g, const SybilGuardParams& params);

  std::uint32_t route_length() const noexcept { return route_length_; }

  /// True when verifier's and suspect's routes intersect at some vertex
  /// (each party launches one route per incident edge, as in the protocol;
  /// acceptance requires a majority of the verifier's routes to be
  /// intersected by at least one suspect route).
  bool accepts(VertexId verifier, VertexId suspect) const;

  /// Vertices on the route from `v` leaving through `slot`.
  std::vector<VertexId> route_of(VertexId v, std::uint32_t slot) const;

 private:
  const Graph& graph_;
  RouteTables tables_;
  std::uint32_t route_length_;
};

PairwiseEvaluation evaluate_sybilguard(const AttackedGraph& attacked,
                                       VertexId verifier,
                                       const SybilGuardParams& params,
                                       std::uint32_t honest_samples,
                                       std::uint32_t sybil_samples,
                                       std::uint64_t seed);

}  // namespace sntrust

// SybilLimit (Yu, Gibbons, Kaminsky, Xiao — Oakland 2008): near-optimal
// random-route Sybil defense. Verifier and suspect each run r = r0 * sqrt(m)
// independent random routes of length w = Theta(mixing time); the suspect is
// accepted when some suspect-route *tail* (its last directed edge) equals a
// verifier-route tail, subject to the balance condition that spreads
// acceptances evenly over the verifier's tails.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sybil/attack.hpp"
#include "sybil/eval.hpp"

namespace sntrust {

struct SybilLimitParams {
  /// Route length w; on a fast-mixing graph O(log n). 0 means ceil(log2 n)+4.
  std::uint32_t route_length = 0;
  /// Route count multiplier: r = route_factor * sqrt(m). The protocol's r0;
  /// it must be large enough that two honest tail sets intersect w.h.p.
  /// (expected collisions ~= route_factor^2 / 2), hence the default of 4.
  double route_factor = 4.0;
  /// Balance condition slack (h = max(balance_h0, (1+balance_slack)*avg)).
  double balance_slack = 4.0;
  /// Trust modulation (Mohaisen et al., INFOCOM 2011): a lazy walk with
  /// hesitation alpha needs 1/(1-alpha) times the steps to mix, so the
  /// trust-aware protocol scales its route length accordingly. 0 = the
  /// plain protocol; larger alpha = more distrust = longer routes = higher
  /// honest acceptance *and* more room for Sybil tails (the tradeoff the
  /// A4 ablation sweeps). Must be in [0, 1).
  double trust_alpha = 0.0;
  std::uint64_t seed = 1;
};

class SybilLimit {
 public:
  SybilLimit(const Graph& g, const SybilLimitParams& params);

  std::uint32_t route_length() const noexcept { return route_length_; }
  std::uint32_t num_routes() const noexcept { return num_routes_; }

  /// A verifier instance holds the verifier's tail set and its balance
  /// counters (acceptances mutate the counters, as in the protocol).
  class Verifier {
   public:
    Verifier(const SybilLimit& parent, VertexId verifier);

    /// Runs the suspect's routes and applies intersection + balance.
    bool accepts(VertexId suspect);

    VertexId vertex() const noexcept { return verifier_; }

   private:
    const SybilLimit& parent_;
    VertexId verifier_;
    /// tail -> index in load counters.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> tails_;  // sorted
    std::vector<std::uint32_t> load_;
    std::uint64_t accepted_total_ = 0;
  };

  Verifier make_verifier(VertexId verifier) const {
    return Verifier{*this, verifier};
  }

 private:
  friend class Verifier;

  /// Directed-edge tails of `r` routes from `v` (encoded u << 32 | w).
  std::vector<std::uint64_t> tails_of(VertexId v) const;

  const Graph& graph_;
  std::uint32_t route_length_ = 0;
  std::uint32_t num_routes_ = 0;
  double balance_slack_;
  std::uint64_t seed_;
};

PairwiseEvaluation evaluate_sybillimit(const AttackedGraph& attacked,
                                       VertexId verifier,
                                       const SybilLimitParams& params,
                                       std::uint32_t honest_samples,
                                       std::uint32_t sybil_samples,
                                       std::uint64_t seed);

}  // namespace sntrust

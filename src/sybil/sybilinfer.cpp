#include "sybil/sybilinfer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "markov/distribution.hpp"
#include "markov/walker.hpp"

namespace sntrust {

SybilInferResult run_sybilinfer(const Graph& g, VertexId seed_vertex,
                                const SybilInferParams& params) {
  const VertexId n = g.num_vertices();
  if (seed_vertex >= n)
    throw std::out_of_range("run_sybilinfer: seed vertex out of range");
  if (n < 2 || g.num_edges() == 0)
    throw std::invalid_argument("run_sybilinfer: graph too small");

  std::uint32_t walk_length = params.walk_length;
  if (walk_length == 0) {
    walk_length = 2;
    for (VertexId x = n; x > 1; x /= 2) ++walk_length;
  }
  std::uint64_t traces = params.num_traces;
  if (traces == 0) traces = 20ull * n;

  SybilInferResult out;
  std::vector<std::uint64_t> hits(n, 0);
  RandomWalker walker{g, params.seed};
  for (std::uint64_t t = 0; t < traces; ++t)
    ++hits[walker.walk_endpoint(seed_vertex, walk_length)];

  const Distribution pi = stationary_distribution(g);
  out.scores.resize(n);
  for (VertexId v = 0; v < n; ++v)
    out.scores[v] =
        static_cast<double>(hits[v]) / (static_cast<double>(traces) * pi[v]);

  out.ranking = ranking_from_scores(out.scores);

  // Cut at the largest relative drop in the smoothed sorted-score curve,
  // ignoring the noisy extremes (first/last 2%).
  const auto lo = static_cast<std::size_t>(0.02 * n) + 1;
  const auto hi = n - std::min<std::size_t>(n - 1, lo);
  double best_drop = 0.0;
  std::size_t best_cut = n;  // default: accept everyone
  for (std::size_t i = lo; i + 1 < hi; ++i) {
    const double here = out.scores[out.ranking[i]];
    const double next = out.scores[out.ranking[i + 1]];
    if (here <= 0.0) break;
    const double drop = (here - next) / here;
    if (drop > best_drop) {
      best_drop = drop;
      best_cut = i + 1;
    }
  }
  // Require a decisive drop; otherwise treat the graph as all-honest.
  if (best_drop < 0.5) best_cut = n;

  out.cut = static_cast<VertexId>(best_cut);
  out.accepted.assign(n, 0);
  for (std::size_t i = 0; i < best_cut; ++i) out.accepted[out.ranking[i]] = 1;
  return out;
}

PairwiseEvaluation evaluate_sybilinfer(const AttackedGraph& attacked,
                                       VertexId seed_vertex,
                                       const SybilInferParams& params) {
  if (seed_vertex >= attacked.num_honest())
    throw std::invalid_argument("evaluate_sybilinfer: seed must be honest");
  const SybilInferResult result =
      run_sybilinfer(attacked.graph(), seed_vertex, params);

  PairwiseEvaluation eval;
  std::uint64_t honest_accepted = 0;
  std::uint64_t sybil_accepted = 0;
  const VertexId n = attacked.graph().num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (!result.accepted[v]) continue;
    if (attacked.is_sybil(v)) ++sybil_accepted;
    else ++honest_accepted;
  }
  eval.honest_trials = attacked.num_honest();
  eval.sybil_trials = attacked.num_sybils();
  eval.honest_accept_fraction =
      static_cast<double>(honest_accepted) / attacked.num_honest();
  eval.sybils_per_attack_edge = static_cast<double>(sybil_accepted) /
                                attacked.num_attack_edges();
  return eval;
}

}  // namespace sntrust

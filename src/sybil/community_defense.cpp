#include "sybil/community_defense.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace sntrust {

CommunityExpansionResult community_expansion(const Graph& g,
                                             VertexId seed_vertex) {
  const VertexId n = g.num_vertices();
  if (seed_vertex >= n)
    throw std::out_of_range("community_expansion: seed out of range");
  if (g.num_edges() == 0)
    throw std::invalid_argument("community_expansion: graph has no edges");

  CommunityExpansionResult result;
  result.absorption_order.reserve(n);
  result.attachment.assign(n, 0.0);

  // inside_degree[v] = edges from v into the current community; a max-heap
  // on attachment = inside_degree / degree drives the greedy absorption.
  // Entries are (attachment, v) with lazy invalidation.
  std::vector<std::uint32_t> inside_degree(n, 0);
  std::vector<std::uint8_t> absorbed(n, 0);
  std::priority_queue<std::pair<double, VertexId>> frontier;

  const std::uint64_t total_volume = g.targets().size();  // 2m
  std::uint64_t community_volume = 0;
  std::uint64_t cut = 0;

  const auto absorb = [&](VertexId v, double attachment) {
    absorbed[v] = 1;
    result.absorption_order.push_back(v);
    result.attachment[v] = attachment;
    community_volume += g.degree(v);
    // Each neighbour edge flips cut membership.
    for (const VertexId w : g.neighbors(v)) {
      if (absorbed[w]) --cut;
      else {
        ++cut;
        ++inside_degree[w];
        frontier.push(
            {static_cast<double>(inside_degree[w]) / g.degree(w), w});
      }
    }
    const std::uint64_t other = total_volume - community_volume;
    const std::uint64_t denominator =
        std::min(community_volume, other);
    result.conductance_curve.push_back(
        denominator == 0
            ? 1.0
            : static_cast<double>(cut) / static_cast<double>(denominator));
  };

  absorb(seed_vertex, 1.0);
  while (!frontier.empty()) {
    const auto [attachment, v] = frontier.top();
    frontier.pop();
    if (absorbed[v]) continue;
    // Lazy invalidation: only act on up-to-date entries.
    const double current =
        static_cast<double>(inside_degree[v]) / g.degree(v);
    if (attachment + 1e-12 < current) continue;
    absorb(v, current);
  }

  // Unreachable vertices (other components): appended with attachment 0.
  for (VertexId v = 0; v < n; ++v)
    if (!absorbed[v]) result.absorption_order.push_back(v);

  // Defense ranking: conductance knee -> trusted community; everything else
  // ranked by its edge attachment to that community.
  std::size_t knee_index = 0;
  double best = 2.0;
  for (std::size_t i = 0; i < result.conductance_curve.size(); ++i) {
    if (result.conductance_curve[i] < best) {
      best = result.conductance_curve[i];
      knee_index = i;
    }
  }
  result.knee = static_cast<VertexId>(knee_index + 1);

  std::vector<std::uint8_t> in_community(n, 0);
  result.ranking.assign(result.absorption_order.begin(),
                        result.absorption_order.begin() + result.knee);
  for (const VertexId v : result.ranking) in_community[v] = 1;

  std::vector<VertexId> outside;
  outside.reserve(n - result.knee);
  for (std::size_t i = result.knee; i < result.absorption_order.size(); ++i)
    outside.push_back(result.absorption_order[i]);
  std::vector<double> outside_attachment(n, 0.0);
  for (const VertexId v : outside) {
    std::uint32_t inside = 0;
    for (const VertexId w : g.neighbors(v))
      if (in_community[w]) ++inside;
    outside_attachment[v] =
        g.degree(v) == 0 ? 0.0
                         : static_cast<double>(inside) / g.degree(v);
  }
  std::stable_sort(outside.begin(), outside.end(),
                   [&](VertexId a, VertexId b) {
                     return outside_attachment[a] > outside_attachment[b];
                   });
  result.ranking.insert(result.ranking.end(), outside.begin(), outside.end());
  return result;
}

PairwiseEvaluation evaluate_community_defense(const AttackedGraph& attacked,
                                              VertexId seed_vertex) {
  if (seed_vertex >= attacked.num_honest())
    throw std::invalid_argument(
        "evaluate_community_defense: seed must be honest");
  const CommunityExpansionResult result =
      community_expansion(attacked.graph(), seed_vertex);

  PairwiseEvaluation eval;
  std::uint64_t honest_accepted = 0;
  std::uint64_t sybil_accepted = 0;
  const VertexId cutoff = attacked.num_honest();
  for (VertexId i = 0; i < cutoff && i < result.ranking.size(); ++i) {
    if (attacked.is_sybil(result.ranking[i])) ++sybil_accepted;
    else ++honest_accepted;
  }
  eval.honest_trials = attacked.num_honest();
  eval.sybil_trials = attacked.num_sybils();
  eval.honest_accept_fraction =
      static_cast<double>(honest_accepted) / attacked.num_honest();
  eval.sybils_per_attack_edge = static_cast<double>(sybil_accepted) /
                                attacked.num_attack_edges();
  return eval;
}

}  // namespace sntrust

// SumUp (Tran, Min, Li, Subramanian — NSDI 2009): Sybil-resilient online
// content voting. A vote collector assigns link capacities via ticket
// distribution inside an envelope around itself and collects votes as max
// flow; Sybil votes are bounded by the attack-edge capacity into the
// envelope.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sybil/attack.hpp"

namespace sntrust {

struct SumUpParams {
  /// Expected number of honest votes to collect; capacities scale with it
  /// (the protocol's C_max). 0 means n / 20.
  std::uint64_t expected_votes = 0;
  std::uint64_t seed = 1;
};

struct SumUpResult {
  std::uint64_t votes_cast = 0;       ///< voters that attempted to vote
  std::uint64_t votes_collected = 0;  ///< votes that reached the collector
};

/// Collects one vote per vertex in `voters` (distinct ids) at `collector`.
/// Capacities: ticket distribution from the collector assigns each vertex a
/// capacity of tickets+1 on its inbound direction (envelope), 1 outside.
SumUpResult run_sumup(const Graph& g, VertexId collector,
                      const std::vector<VertexId>& voters,
                      const SumUpParams& params);

/// Vote-collection evaluation under attack: fraction of honest votes
/// collected, and Sybil votes collected per attack edge when every Sybil
/// votes.
struct SumUpEvaluation {
  double honest_collect_fraction = 0.0;
  double sybil_votes_per_attack_edge = 0.0;
};

SumUpEvaluation evaluate_sumup(const AttackedGraph& attacked,
                               VertexId collector,
                               std::uint32_t honest_voters,
                               const SumUpParams& params);

}  // namespace sntrust

// SybilInfer-lite (after Danezis & Mittal, NDSS 2009): a walk-trace
// classifier. The full SybilInfer samples cuts with Metropolis-Hastings; the
// load-bearing signal — shown explicitly by Viswanath et al. (SIGCOMM 2010)
// and echoed in this paper's related work — is how much probability mass
// short random walks from the trusted seed leave on each vertex relative to
// its stationary share. We implement that signal directly: score(v) =
// hit-rate(v) / pi(v) over many O(log n)-length walk traces, then classify by
// the largest relative drop in the sorted score curve (the "cut").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sybil/attack.hpp"
#include "sybil/eval.hpp"

namespace sntrust {

struct SybilInferParams {
  /// Number of sampled walk traces. 0 means 20 * n.
  std::uint64_t num_traces = 0;
  /// Walk length; 0 means ceil(log2 n) + 2.
  std::uint32_t walk_length = 0;
  std::uint64_t seed = 1;
};

struct SybilInferResult {
  /// Stationary-normalized endpoint frequency per vertex.
  std::vector<double> scores;
  /// Vertices sorted by descending score.
  Ranking ranking;
  /// accepted[v] = classified honest.
  std::vector<std::uint8_t> accepted;
  /// Number of vertices classified honest (the cut position).
  VertexId cut = 0;
};

/// Runs the classifier with `seed_vertex` as the trusted node.
SybilInferResult run_sybilinfer(const Graph& g, VertexId seed_vertex,
                                const SybilInferParams& params);

PairwiseEvaluation evaluate_sybilinfer(const AttackedGraph& attacked,
                                       VertexId seed_vertex,
                                       const SybilInferParams& params);

}  // namespace sntrust

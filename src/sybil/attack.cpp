#include "sybil/attack.hpp"

#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/traversal.hpp"
#include "util/rng.hpp"

namespace sntrust {

AttackedGraph::AttackedGraph(const Graph& honest, const AttackParams& params) {
  if (honest.num_vertices() < 2)
    throw std::invalid_argument("AttackedGraph: honest graph too small");
  if (!is_connected(honest))
    throw std::invalid_argument("AttackedGraph: honest graph must be connected");
  if (params.num_sybils == 0)
    throw std::invalid_argument("AttackedGraph: need at least one Sybil");
  if (params.attack_edges == 0)
    throw std::invalid_argument("AttackedGraph: need at least one attack edge");

  num_honest_ = honest.num_vertices();
  num_sybils_ = params.num_sybils;
  attack_edges_ = params.attack_edges;

  Rng rng{params.seed};

  // Sybil region: scale-free internal wiring (attacker's strongest play
  // against walk-based defenses is a well-mixed region). Tiny regions fall
  // back to a clique.
  Graph sybil_region;
  if (num_sybils_ > params.sybil_internal_degree + 1) {
    sybil_region = barabasi_albert(num_sybils_, params.sybil_internal_degree,
                                   rng());
  } else {
    GraphBuilder clique{num_sybils_};
    for (VertexId u = 0; u < num_sybils_; ++u)
      for (VertexId v = u + 1; v < num_sybils_; ++v) clique.add_edge(u, v);
    sybil_region = clique.build();
  }

  GraphBuilder builder{num_honest_ + num_sybils_};
  builder.reserve(honest.num_edges() + sybil_region.num_edges() +
                  attack_edges_);
  for (const Edge& e : honest.edges()) builder.add_edge(e.u, e.v);
  for (const Edge& e : sybil_region.edges())
    builder.add_edge(num_honest_ + e.u, num_honest_ + e.v);

  // Honest endpoint chooser per attacker strategy.
  std::vector<VertexId> endpoint_pool;
  switch (params.strategy) {
    case AttackStrategy::kRandom:
      break;  // drawn uniformly below
    case AttackStrategy::kTargetHubs:
      // Degree-proportional pool: each vertex once per incident edge.
      endpoint_pool.reserve(honest.targets().size());
      for (VertexId v = 0; v < num_honest_; ++v)
        for (VertexId i = 0; i < honest.degree(v); ++i)
          endpoint_pool.push_back(v);
      break;
    case AttackStrategy::kSingleRegion:
    case AttackStrategy::kNearSeed: {
      if (params.target >= num_honest_)
        throw std::invalid_argument("AttackedGraph: target out of range");
      // Vertices in BFS order from the target; the pool is the smallest
      // ball holding enough endpoints (SingleRegion: a community-sized
      // ball; NearSeed: just enough vertices for the edge budget).
      const BfsResult ball = bfs(honest, params.target);
      const VertexId want =
          params.strategy == AttackStrategy::kNearSeed
              ? std::max<VertexId>(1, attack_edges_)
              : std::max<VertexId>(attack_edges_, num_honest_ / 10);
      for (std::uint32_t level = 0;
           endpoint_pool.size() < want && level <= ball.eccentricity;
           ++level) {
        for (VertexId v = 0;
             v < num_honest_ && endpoint_pool.size() < want; ++v)
          if (ball.distances[v] == level) endpoint_pool.push_back(v);
      }
      break;
    }
  }

  attack_endpoints_.reserve(attack_edges_);
  std::uint32_t placed = 0;
  while (placed < attack_edges_) {
    const VertexId h =
        endpoint_pool.empty()
            ? static_cast<VertexId>(rng.uniform(num_honest_))
            : endpoint_pool[rng.uniform(endpoint_pool.size())];
    const auto s =
        num_honest_ + static_cast<VertexId>(rng.uniform(num_sybils_));
    const std::size_t before = builder.pending_edges();
    builder.add_edge(h, s);
    if (builder.pending_edges() == before) continue;  // defensive; u != v holds
    attack_endpoints_.push_back(h);
    ++placed;
  }
  combined_ = builder.build();
  // Parallel attack edges collapse in build(); the protocol-level edge count
  // is what the defenses bound against, so keep attack_edges_ as requested
  // but note duplicates are rare (O(g^2 / (n_h * n_s))).
}

}  // namespace sntrust

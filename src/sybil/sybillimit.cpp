#include "sybil/sybillimit.hpp"

#include <algorithm>
#include <cmath>

#include "markov/walker.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

std::uint64_t encode_edge(VertexId u, VertexId w) {
  return (static_cast<std::uint64_t>(u) << 32) | w;
}

}  // namespace

SybilLimit::SybilLimit(const Graph& g, const SybilLimitParams& params)
    : graph_(g), balance_slack_(params.balance_slack), seed_(params.seed) {
  if (params.trust_alpha < 0.0 || params.trust_alpha >= 1.0)
    throw std::invalid_argument("SybilLimit: trust_alpha must be in [0,1)");
  if (params.route_length != 0) {
    route_length_ = params.route_length;
  } else {
    route_length_ = 4;
    for (VertexId x = g.num_vertices(); x > 1; x /= 2) ++route_length_;
  }
  // Trust modulation: the modulated chain mixes 1/(1-alpha) slower, so the
  // protocol compensates with proportionally longer routes.
  if (params.trust_alpha > 0.0)
    route_length_ = static_cast<std::uint32_t>(
        std::ceil(route_length_ / (1.0 - params.trust_alpha)));
  const double m = std::max<double>(1.0, static_cast<double>(g.num_edges()));
  num_routes_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::ceil(params.route_factor * std::sqrt(m))));
}

std::vector<std::uint64_t> SybilLimit::tails_of(VertexId v) const {
  // Each of the r routes uses an independent routing-table instance, as in
  // the protocol. Instances are implicit (HashedRoutes), and the first slot
  // of route i from v is drawn from a per-(vertex, instance) stream so that
  // repeated queries agree.
  std::vector<std::uint64_t> tails;
  tails.reserve(num_routes_);
  const std::uint32_t deg = graph_.degree(v);
  if (deg == 0) return tails;
  const HashedRoutes routes{graph_, seed_};
  for (std::uint32_t i = 0; i < num_routes_; ++i) {
    Rng slot_rng{seed_ ^ (0x517cc1b727220a95ULL * (i + 1)) ^
                 (0x2545F4914F6CDD1DULL * (v + 1))};
    const auto slot = static_cast<std::uint32_t>(slot_rng.uniform(deg));
    const auto [tail_u, tail_w] = routes.route_tail(v, slot, route_length_, i);
    tails.push_back(encode_edge(tail_u, tail_w));
  }
  return tails;
}

SybilLimit::Verifier::Verifier(const SybilLimit& parent, VertexId verifier)
    : parent_(parent), verifier_(verifier) {
  const std::vector<std::uint64_t> tails = parent.tails_of(verifier);
  tails_.reserve(tails.size());
  for (std::uint32_t i = 0; i < tails.size(); ++i)
    tails_.push_back({tails[i], i});
  std::sort(tails_.begin(), tails_.end());
  load_.assign(tails.size(), 0);
}

bool SybilLimit::Verifier::accepts(VertexId suspect) {
  const std::vector<std::uint64_t> suspect_tails = parent_.tails_of(suspect);
  if (suspect_tails.empty() || tails_.empty()) return false;

  // Intersection condition: some suspect tail equals one of the verifier's
  // tails. Collect all candidate verifier tail indices.
  std::vector<std::uint32_t> candidates;
  for (const std::uint64_t tail : suspect_tails) {
    auto it = std::lower_bound(
        tails_.begin(), tails_.end(), std::make_pair(tail, 0u));
    while (it != tails_.end() && it->first == tail) {
      candidates.push_back(it->second);
      ++it;
    }
  }
  if (candidates.empty()) return false;

  // Balance condition: assign to the least-loaded intersecting tail; reject
  // when that tail is already above the allowed bound
  // h = max(h0, (1 + slack) * average_load).
  std::uint32_t best = candidates.front();
  for (const std::uint32_t c : candidates)
    if (load_[c] < load_[best]) best = c;
  const double average =
      static_cast<double>(accepted_total_) / static_cast<double>(load_.size());
  const double bound =
      std::max(4.0, (1.0 + parent_.balance_slack_) * average);
  if (static_cast<double>(load_[best]) + 1.0 > bound) return false;
  ++load_[best];
  ++accepted_total_;
  return true;
}

PairwiseEvaluation evaluate_sybillimit(const AttackedGraph& attacked,
                                       VertexId verifier,
                                       const SybilLimitParams& params,
                                       std::uint32_t honest_samples,
                                       std::uint32_t sybil_samples,
                                       std::uint64_t seed) {
  const SybilLimit limit{attacked.graph(), params};
  SybilLimit::Verifier v = limit.make_verifier(verifier);
  Rng rng{seed};

  PairwiseEvaluation eval;
  std::uint32_t honest_accepted = 0;
  const std::uint32_t honest_trials =
      std::min<std::uint32_t>(honest_samples, attacked.num_honest());
  for (std::uint32_t i = 0; i < honest_trials; ++i) {
    const auto suspect =
        static_cast<VertexId>(rng.uniform(attacked.num_honest()));
    if (v.accepts(suspect)) ++honest_accepted;
  }

  std::uint32_t sybil_accepted = 0;
  const std::uint32_t sybil_trials =
      std::min<std::uint32_t>(sybil_samples, attacked.num_sybils());
  for (std::uint32_t i = 0; i < sybil_trials; ++i) {
    const auto suspect = attacked.num_honest() +
                         static_cast<VertexId>(rng.uniform(attacked.num_sybils()));
    if (v.accepts(suspect)) ++sybil_accepted;
  }

  eval.honest_trials = honest_trials;
  eval.sybil_trials = sybil_trials;
  eval.honest_accept_fraction =
      honest_trials == 0
          ? 0.0
          : static_cast<double>(honest_accepted) / honest_trials;
  const double accepted_rate =
      sybil_trials == 0 ? 0.0
                        : static_cast<double>(sybil_accepted) / sybil_trials;
  eval.sybils_per_attack_edge = accepted_rate * attacked.num_sybils() /
                                attacked.num_attack_edges();
  return eval;
}

}  // namespace sntrust

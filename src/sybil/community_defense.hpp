// Community-detection-based Sybil defense (after Viswanath, Post, Gummadi,
// Mislove — SIGCOMM 2010, the paper's ref [24]): their analysis showed the
// walk-based defenses effectively rank nodes by how well-connected they are
// to the trusted node, and that a *local community expansion* around the
// trusted node achieves the same ranking. This module implements that
// expansion directly.
//
// Greedy expansion: starting from the trusted seed, repeatedly absorb the
// frontier vertex with the strongest attachment to the current community
// (fraction of its degree already inside). The absorption order *is* the
// trust ranking; a cutoff turns it into a classifier.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sybil/attack.hpp"
#include "sybil/eval.hpp"

namespace sntrust {

struct CommunityExpansionResult {
  /// Vertices in absorption order (position 0 = the seed). Vertices
  /// unreachable from the seed are appended at the end in id order.
  /// NOTE: raw absorption order is gameable by a densely wired Sybil
  /// region — once the expansion enters it, it floods it (the greedy
  /// algorithm prefers tight regions). Use `ranking` (below) for defense
  /// decisions.
  Ranking absorption_order;
  /// attachment[v] = fraction of v's degree inside the community at the
  /// moment v was absorbed (1.0 for the seed, 0.0 for unreachable).
  std::vector<double> attachment;
  /// Conductance of the community after each absorption (same length as the
  /// reachable prefix of `absorption_order`); the sharp knee marks the
  /// honest region boundary under attack.
  std::vector<double> conductance_curve;
  /// The defense ranking: absorption order up to the conductance knee (the
  /// detected trusted community), then everything else by its attachment to
  /// that community, descending. This is robust to Sybil-region density —
  /// Sybils connect to the knee community only through attack edges.
  Ranking ranking;
  /// Size of the knee community (prefix of `absorption_order`).
  VertexId knee = 0;
};

/// Runs the expansion from `seed_vertex` over the whole graph.
/// Requires a graph with >= 1 edge; throws std::invalid_argument otherwise.
CommunityExpansionResult community_expansion(const Graph& g,
                                             VertexId seed_vertex);

/// Classifier evaluation: accept the first `attacked.num_honest()` vertices
/// of the ranking (the defender knows the expected honest population, as in
/// Viswanath et al.'s cutoff experiments) and measure accuracy.
PairwiseEvaluation evaluate_community_defense(const AttackedGraph& attacked,
                                              VertexId seed_vertex);

}  // namespace sntrust

#include "sybil/sybilguard.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.hpp"

namespace sntrust {

SybilGuard::SybilGuard(const Graph& g, const SybilGuardParams& params)
    : graph_(g), tables_(g, params.seed) {
  if (params.route_length != 0) {
    route_length_ = params.route_length;
  } else {
    const double n = std::max<double>(2.0, g.num_vertices());
    route_length_ = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(n * std::log2(n))));
  }
}

std::vector<VertexId> SybilGuard::route_of(VertexId v,
                                           std::uint32_t slot) const {
  return tables_.route(v, slot, route_length_);
}

bool SybilGuard::accepts(VertexId verifier, VertexId suspect) const {
  const std::uint32_t deg_v = graph_.degree(verifier);
  const std::uint32_t deg_s = graph_.degree(suspect);
  if (deg_v == 0 || deg_s == 0) return false;

  // Union of vertices on all suspect routes.
  std::unordered_set<VertexId> suspect_vertices;
  for (std::uint32_t slot = 0; slot < deg_s; ++slot) {
    for (const VertexId v : tables_.route(suspect, slot, route_length_))
      suspect_vertices.insert(v);
  }

  // Majority of verifier routes must intersect.
  std::uint32_t intersected = 0;
  for (std::uint32_t slot = 0; slot < deg_v; ++slot) {
    for (const VertexId v : tables_.route(verifier, slot, route_length_)) {
      if (suspect_vertices.count(v) != 0) {
        ++intersected;
        break;
      }
    }
  }
  return intersected * 2 > deg_v;
}

PairwiseEvaluation evaluate_sybilguard(const AttackedGraph& attacked,
                                       VertexId verifier,
                                       const SybilGuardParams& params,
                                       std::uint32_t honest_samples,
                                       std::uint32_t sybil_samples,
                                       std::uint64_t seed) {
  const SybilGuard guard{attacked.graph(), params};
  Rng rng{seed};

  PairwiseEvaluation eval;
  std::uint32_t honest_accepted = 0;
  const std::uint32_t honest_trials =
      std::min<std::uint32_t>(honest_samples, attacked.num_honest());
  for (std::uint32_t i = 0; i < honest_trials; ++i) {
    const auto suspect =
        static_cast<VertexId>(rng.uniform(attacked.num_honest()));
    if (guard.accepts(verifier, suspect)) ++honest_accepted;
  }

  std::uint32_t sybil_accepted = 0;
  const std::uint32_t sybil_trials =
      std::min<std::uint32_t>(sybil_samples, attacked.num_sybils());
  for (std::uint32_t i = 0; i < sybil_trials; ++i) {
    const auto suspect = attacked.num_honest() +
                         static_cast<VertexId>(rng.uniform(attacked.num_sybils()));
    if (guard.accepts(verifier, suspect)) ++sybil_accepted;
  }

  eval.honest_trials = honest_trials;
  eval.sybil_trials = sybil_trials;
  eval.honest_accept_fraction =
      honest_trials == 0
          ? 0.0
          : static_cast<double>(honest_accepted) / honest_trials;
  // Scale the sampled Sybil acceptance rate up to the full region, then
  // normalize per attack edge (the defenses' guarantee unit).
  const double accepted_rate =
      sybil_trials == 0 ? 0.0
                        : static_cast<double>(sybil_accepted) / sybil_trials;
  eval.sybils_per_attack_edge = accepted_rate * attacked.num_sybils() /
                                attacked.num_attack_edges();
  return eval;
}

}  // namespace sntrust

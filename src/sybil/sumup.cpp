#include "sybil/sumup.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "flow/maxflow.hpp"
#include "sybil/gatekeeper.hpp"
#include "util/rng.hpp"

namespace sntrust {

SumUpResult run_sumup(const Graph& g, VertexId collector,
                      const std::vector<VertexId>& voters,
                      const SumUpParams& params) {
  const VertexId n = g.num_vertices();
  if (collector >= n)
    throw std::out_of_range("run_sumup: collector out of range");
  {
    std::unordered_set<VertexId> distinct;
    for (const VertexId v : voters) {
      if (v >= n) throw std::out_of_range("run_sumup: voter out of range");
      if (!distinct.insert(v).second)
        throw std::invalid_argument("run_sumup: duplicate voter");
    }
  }

  std::uint64_t c_max = params.expected_votes;
  if (c_max == 0) c_max = std::max<std::uint64_t>(1, n / 20);

  // Capacity assignment: ticket distribution from the collector defines the
  // vote envelope. An arc x -> y carries 1 + tickets_received[y]: capacity
  // concentrates toward the collector's ticketed core and degrades to 1 at
  // the periphery — in particular across attack edges, whose Sybil endpoint
  // holds no tickets.
  const TicketRun tickets = distribute_tickets(g, collector, c_max);

  FlowNetwork network{n + 1};  // extra node: virtual vote source
  const std::uint32_t source = n;
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId w : g.neighbors(u)) {
      // Each directed arc added once (u -> w for every ordered pair).
      network.add_arc(u, w, 1 + tickets.tickets_received[w]);
    }
  }
  for (const VertexId voter : voters)
    if (voter != collector) network.add_arc(source, voter, 1);

  SumUpResult result;
  result.votes_cast = voters.size();
  std::uint64_t collected = network.max_flow(source, collector);
  // The collector's own vote (if it is a voter) always counts.
  if (std::find(voters.begin(), voters.end(), collector) != voters.end())
    ++collected;
  result.votes_collected = collected;
  return result;
}

SumUpEvaluation evaluate_sumup(const AttackedGraph& attacked,
                               VertexId collector,
                               std::uint32_t honest_voters,
                               const SumUpParams& params) {
  if (collector >= attacked.num_honest())
    throw std::invalid_argument("evaluate_sumup: collector must be honest");

  SumUpEvaluation eval;
  Rng rng{params.seed};

  // Honest experiment: sampled honest voters.
  const std::uint32_t sample =
      std::min<std::uint32_t>(honest_voters, attacked.num_honest());
  std::vector<VertexId> voters =
      rng.sample_without_replacement(attacked.num_honest(), sample);
  const SumUpResult honest_run =
      run_sumup(attacked.graph(), collector, voters, params);
  eval.honest_collect_fraction =
      honest_run.votes_cast == 0
          ? 0.0
          : static_cast<double>(honest_run.votes_collected) /
                static_cast<double>(honest_run.votes_cast);

  // Sybil experiment: every Sybil votes.
  std::vector<VertexId> sybil_voters;
  sybil_voters.reserve(attacked.num_sybils());
  for (VertexId s = 0; s < attacked.num_sybils(); ++s)
    sybil_voters.push_back(attacked.num_honest() + s);
  const SumUpResult sybil_run =
      run_sumup(attacked.graph(), collector, sybil_voters, params);
  eval.sybil_votes_per_attack_edge =
      static_cast<double>(sybil_run.votes_collected) /
      attacked.num_attack_edges();
  return eval;
}

}  // namespace sntrust

#include "sybil/eval.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sntrust {

Ranking ranking_from_scores(const std::vector<double>& scores) {
  obs::count("eval.rankings");
  Ranking order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return scores[a] > scores[b];
  });
  return order;
}

double ranking_overlap(const Ranking& a, const Ranking& b,
                       std::uint32_t step) {
  const obs::Span span{"eval.ranking_overlap", "sybil"};
  const obs::Stopwatch clock;
  // Record on every exit path, including the early returns.
  struct Latency {
    const obs::Stopwatch& clock;
    ~Latency() { obs::record_latency("eval.ranking_ms", clock.elapsed_ms()); }
  } latency{clock};
  if (a.size() != b.size())
    throw std::invalid_argument("ranking_overlap: size mismatch");
  const std::size_t n = a.size();
  if (n == 0) return 1.0;
  if (step == 0) step = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(n / 50));

  std::unordered_set<VertexId> seen_a, seen_b;
  seen_a.reserve(n);
  seen_b.reserve(n);
  double total = 0.0;
  std::uint32_t checkpoints = 0;
  std::size_t next_checkpoint = step;
  std::size_t common = 0;  // |top-k(a) ∩ top-k(b)| maintained incrementally
  for (std::size_t i = 0; i < n; ++i) {
    if (seen_b.count(a[i]) != 0) ++common;   // a[i] joined by earlier b's
    seen_a.insert(a[i]);
    if (seen_a.count(b[i]) != 0) ++common;   // b[i] matches a[0..i] incl. a[i]
    seen_b.insert(b[i]);
    if (i + 1 == next_checkpoint || i + 1 == n) {
      total += static_cast<double>(common) / static_cast<double>(i + 1);
      ++checkpoints;
      if (i + 1 == next_checkpoint) next_checkpoint += step;
    }
  }
  return checkpoints == 0 ? 1.0 : total / checkpoints;
}

double ranking_auc(const Ranking& ranking, const AttackedGraph& attacked) {
  const obs::Span span{"eval.ranking_auc", "sybil"};
  const obs::Stopwatch clock;
  struct Latency {
    const obs::Stopwatch& clock;
    ~Latency() { obs::record_latency("eval.ranking_ms", clock.elapsed_ms()); }
  } latency{clock};
  obs::count("eval.auc_evaluations");
  if (ranking.size() != attacked.graph().num_vertices())
    throw std::invalid_argument("ranking_auc: ranking size mismatch");
  const std::uint64_t honest = attacked.num_honest();
  const std::uint64_t sybil = attacked.num_sybils();
  // Count (honest, sybil) pairs ordered correctly: walk the ranking; each
  // honest vertex encountered is "above" all sybils not yet seen.
  std::uint64_t correct_pairs = 0;
  std::uint64_t sybils_seen = 0;
  for (const VertexId v : ranking) {
    if (attacked.is_sybil(v)) ++sybils_seen;
    else correct_pairs += sybil - sybils_seen;
  }
  return static_cast<double>(correct_pairs) /
         (static_cast<double>(honest) * static_cast<double>(sybil));
}

}  // namespace sntrust

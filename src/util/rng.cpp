#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <unordered_set>

namespace sntrust {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound must be > 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_in: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() noexcept {
  // 53 random bits -> [0,1) double with full mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("Rng::bernoulli: p must be in [0,1]");
  return uniform_real() < p;
}

std::uint64_t Rng::geometric(double p) {
  if (!(p > 0.0) || p > 1.0)
    throw std::invalid_argument("Rng::geometric: p must be in (0,1]");
  if (p == 1.0) return 0;
  const double u = uniform_real();
  // floor(log(1-u) / log(1-p)); 1-u in (0,1], so log is well-defined.
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index) noexcept {
  std::uint64_t x = base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  std::uint64_t z = splitmix64(x);
  return z ^ splitmix64(x);  // two rounds decorrelate consecutive indices
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  if (k > n)
    throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Dense Fisher-Yates prefix when sampling a large fraction; hash-set
  // rejection when sparse, to avoid O(n) setup for huge n.
  if (k * 3 >= n) {
    std::vector<std::uint32_t> all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(uniform(n - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const auto v = static_cast<std::uint32_t>(uniform(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace sntrust

#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sntrust::json {

namespace {

constexpr std::size_t kMaxDepth = 200;

void append_utf8(std::string& out, std::uint32_t code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() const {
    if (pos_ >= text_.size())
      throw std::runtime_error("json parse error at byte " +
                               std::to_string(pos_) + ": unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p)
        fail(std::string("invalid literal (expected \"") + literal + "\")");
      ++pos_;
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("high surrogate not followed by \\u escape");
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              fail("invalid low surrogate");
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Integer part: 0, or a nonzero digit followed by digits.
    if (pos_ >= text_.size()) fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    } else {
      fail("invalid number");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        fail("digit required after decimal point");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        fail("digit required in exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t int_value = 0;
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), int_value);
      if (ec == std::errc{} && ptr == token.data() + token.size())
        return Value::integer(int_value);
      // Falls through for magnitudes beyond int64 range.
    }
    return Value::number(std::strtod(token.c_str(), nullptr));
  }

  Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': {
        ++pos_;
        Object members;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return Value::object(std::move(members));
        }
        for (;;) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          skip_ws();
          members.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          const char c = peek();
          ++pos_;
          if (c == '}') return Value::object(std::move(members));
          if (c != ',') fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        Array items;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return Value::array(std::move(items));
        }
        for (;;) {
          skip_ws();
          items.push_back(parse_value(depth + 1));
          skip_ws();
          const char c = peek();
          ++pos_;
          if (c == ']') return Value::array(std::move(items));
          if (c != ',') fail("expected ',' or ']' in array");
        }
      }
      case '"': return Value::string(parse_string());
      case 't': expect_literal("true"); return Value::boolean(true);
      case 'f': expect_literal("false"); return Value::boolean(false);
      case 'n': expect_literal("null"); return Value::null();
      default: return parse_number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void write_double(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no NaN/Infinity; null is the conventional strict encoding.
    out << "null";
    return;
  }
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec == std::errc{})
    out.write(buffer, ptr - buffer);
  else
    out << value;
}

}  // namespace

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::string escape(const std::string& s) {
  std::ostringstream out;
  write_json_string(out, s);
  return out.str();
}

Value Value::parse(const std::string& text) {
  Parser parser{text};
  return parser.parse_document();
}

Value Value::null() { return Value{}; }

Value Value::boolean(bool value) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = value;
  return v;
}

Value Value::number(double value) {
  Value v;
  v.kind_ = Kind::Number;
  v.num_ = value;
  return v;
}

Value Value::integer(std::int64_t value) {
  Value v;
  v.kind_ = Kind::Number;
  v.num_ = static_cast<double>(value);
  v.int_valued_ = true;
  v.int_ = value;
  return v;
}

Value Value::string(std::string value) {
  Value v;
  v.kind_ = Kind::String;
  v.str_ = std::move(value);
  return v;
}

Value Value::array(Array items) {
  Value v;
  v.kind_ = Kind::Array;
  v.arr_ = std::move(items);
  return v;
}

Value Value::object(Object members) {
  Value v;
  v.kind_ = Kind::Object;
  v.obj_ = std::move(members);
  return v;
}

namespace {
[[noreturn]] void kind_error(const char* wanted) {
  throw std::runtime_error(std::string("json value is not a ") + wanted);
}
}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) kind_error("number");
  return num_;
}

std::int64_t Value::as_int() const {
  if (kind_ != Kind::Number) kind_error("number");
  return int_valued_ ? int_ : static_cast<std::int64_t>(num_);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_error("string");
  return str_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::Array) kind_error("array");
  return arr_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::Object) kind_error("object");
  return obj_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& member : obj_)
    if (member.first == key) return &member.second;
  return nullptr;
}

void Value::write(std::ostream& out) const {
  switch (kind_) {
    case Kind::Null: out << "null"; break;
    case Kind::Bool: out << (bool_ ? "true" : "false"); break;
    case Kind::Number:
      if (int_valued_)
        out << int_;
      else
        write_double(out, num_);
      break;
    case Kind::String: write_json_string(out, str_); break;
    case Kind::Array: {
      out << '[';
      bool first = true;
      for (const Value& item : arr_) {
        if (!first) out << ',';
        first = false;
        item.write(out);
      }
      out << ']';
      break;
    }
    case Kind::Object: {
      out << '{';
      bool first = true;
      for (const Member& member : obj_) {
        if (!first) out << ',';
        first = false;
        write_json_string(out, member.first);
        out << ':';
        member.second.write(out);
      }
      out << '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

}  // namespace sntrust::json

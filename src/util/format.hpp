// Small string-formatting helpers shared by the report printers.
#pragma once

#include <cstdint>
#include <string>

namespace sntrust {

/// 12345678 -> "12,345,678".
std::string with_thousands(std::uint64_t value);

/// Fixed-point decimal with `digits` fractional digits (no locale).
std::string fixed(double value, int digits);

/// Compact scientific-ish rendering used in series output: trims trailing
/// zeros of a %.*g representation.
std::string compact(double value, int significant = 6);

/// 0xdeadbeef-style hex rendering (fingerprints, CRCs).
std::string to_hex(std::uint64_t value);

}  // namespace sntrust

#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace sntrust {

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

bool env_bool(const std::string& name, bool fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  std::string value{raw};
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (value == "1" || value == "true" || value == "yes" || value == "on")
    return true;
  if (value == "0" || value == "false" || value == "no" || value == "off")
    return false;
  return fallback;
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string{raw};
}

double bench_scale() {
  return std::clamp(env_double("SNTRUST_SCALE", 1.0), 0.01, 100.0);
}

}  // namespace sntrust

#include "util/prp.hpp"

#include <algorithm>
#include <bit>

namespace sntrust {

namespace {

std::uint32_t mix(std::uint32_t value, std::uint64_t key) {
  std::uint64_t z = value + key;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::uint32_t>(z ^ (z >> 31));
}

}  // namespace

KeyedPermutation::KeyedPermutation(std::uint32_t domain, std::uint64_t key)
    : domain_(domain) {
  if (domain == 0)
    throw std::invalid_argument("KeyedPermutation: domain must be >= 1");
  // Pad the domain to 2^(2 * half_bits_) and cycle-walk back into range.
  total_bits_ = std::max<std::uint32_t>(2, std::bit_width(domain - 1));
  half_bits_ = (total_bits_ + 1) / 2;
  std::uint64_t k = key;
  for (auto& rk : round_keys_) {
    k += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = k;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    rk = z ^ (z >> 27);
  }
}

std::uint32_t KeyedPermutation::feistel(std::uint32_t x, bool forward) const {
  const std::uint32_t hb = half_bits_;
  const std::uint32_t hmask = (1u << hb) - 1;
  std::uint32_t left = (x >> hb) & hmask;
  std::uint32_t right = x & hmask;
  if (forward) {
    for (int round = 0; round < 4; ++round) {
      const std::uint32_t next = left ^ (mix(right, round_keys_[round]) & hmask);
      left = right;
      right = next;
    }
  } else {
    for (int round = 3; round >= 0; --round) {
      const std::uint32_t prev = right ^ (mix(left, round_keys_[round]) & hmask);
      right = left;
      left = prev;
    }
  }
  return (left << hb) | right;
}

std::uint32_t KeyedPermutation::apply(std::uint32_t x) const {
  if (x >= domain_)
    throw std::out_of_range("KeyedPermutation::apply: x out of domain");
  std::uint32_t y = x;
  do {
    y = feistel(y, /*forward=*/true);
  } while (y >= domain_);
  return y;
}

std::uint32_t KeyedPermutation::invert(std::uint32_t y) const {
  if (y >= domain_)
    throw std::out_of_range("KeyedPermutation::invert: y out of domain");
  std::uint32_t x = y;
  do {
    x = feistel(x, /*forward=*/false);
  } while (x >= domain_);
  return x;
}

}  // namespace sntrust

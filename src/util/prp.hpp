// Keyed pseudo-random permutation over a small integer domain [0, n).
//
// Implemented as a 4-round Feistel network over the next power of two with
// cycle-walking, so evaluation needs no per-domain storage. SybilLimit uses
// one logical routing-table instance per random route (r = sqrt(m) of them);
// materializing them would cost O(r * m) memory, while this evaluates any
// instance's permutation entry on demand in O(1).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace sntrust {

class KeyedPermutation {
 public:
  /// Permutation of [0, domain). Precondition: domain >= 1.
  KeyedPermutation(std::uint32_t domain, std::uint64_t key);

  std::uint32_t domain() const noexcept { return domain_; }

  /// pi(x). Precondition: x < domain.
  std::uint32_t apply(std::uint32_t x) const;

  /// pi^{-1}(y). Precondition: y < domain.
  std::uint32_t invert(std::uint32_t y) const;

 private:
  std::uint32_t feistel(std::uint32_t x, bool forward) const;

  std::uint32_t domain_;
  std::uint32_t half_bits_;    ///< bits of the right half
  std::uint32_t total_bits_;   ///< bits of the padded power-of-two domain
  std::uint64_t round_keys_[4];
};

}  // namespace sntrust

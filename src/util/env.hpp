// Environment-variable configuration helpers for benches and examples.
//
// The benchmark harness scales its workloads with SNTRUST_SCALE and similar
// knobs; these helpers centralize the parsing so every binary treats the
// variables identically.
#pragma once

#include <cstdint>
#include <string>

namespace sntrust {

/// Returns the value of `name` parsed as a double, or `fallback` when the
/// variable is unset or unparsable.
double env_double(const std::string& name, double fallback);

/// Returns the value of `name` parsed as a 64-bit integer, or `fallback`.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Returns the value of `name` parsed as a boolean, or `fallback` when the
/// variable is unset, empty, or unrecognized. Accepts (case-insensitively)
/// "1"/"true"/"yes"/"on" and "0"/"false"/"no"/"off".
bool env_bool(const std::string& name, bool fallback);

/// Returns the raw value of `name`, or `fallback` when unset or empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Global workload scale for benches: SNTRUST_SCALE (default 1.0, clamped to
/// [0.01, 100]). Dataset analogue sizes are multiplied by this.
double bench_scale();

}  // namespace sntrust

// Deterministic pseudo-random number generation for all stochastic components.
//
// Every stochastic algorithm in sntrust takes an explicit 64-bit seed and
// derives its randomness from an Rng instance, so measurements are exactly
// reproducible run-to-run and machine-to-machine (no std::random_device, and
// no reliance on the unspecified behaviour of std::uniform_int_distribution).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace sntrust {

/// xoshiro256** generator seeded via splitmix64.
///
/// Satisfies std::uniform_random_bit_generator, so it can be used with
/// standard facilities, but the helpers below (uniform/uniform_real/...)
/// are preferred because their output is fully specified.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initializes the state from `seed` via splitmix64.
  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_real() noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Geometric "skip" count: number of failures before the first success of
  /// a Bernoulli(p) sequence. Used by the V-E edge-sampling generators.
  /// Precondition: 0 < p <= 1.
  std::uint64_t geometric(double p);

  /// A fresh generator whose seed is derived from this one's stream;
  /// convenient for giving sub-tasks independent streams.
  Rng split() noexcept { return Rng{(*this)()}; }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct values from [0, n) in uniformly random order.
  /// Precondition: k <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

 private:
  std::uint64_t state_[4];
};

/// Seed for work item `index` of a sweep seeded with `base`: a splitmix64
/// finalizer over the pair, so parallel sweeps can give every item an
/// independent Rng stream that depends only on its index — never on which
/// worker ran it or in what order (the bitwise-determinism rule of
/// src/parallel/).
std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index) noexcept;

}  // namespace sntrust

#include "util/format.hpp"

#include <cstdio>

namespace sntrust {

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group)
      out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string compact(double value, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", significant, value);
  return buf;
}

std::string to_hex(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace sntrust

// Minimal strict JSON reader/writer shared by the observability exports
// (Chrome traces, run reports) and the benchdiff tool.
//
// `Value` is an ordered document model: objects remember insertion order so
// reports serialize deterministically and diff cleanly. `parse` is strict
// RFC-8259 — no trailing commas, no comments, no NaN/Infinity literals, full
// escape validation including surrogate pairs — so "our reports parse under a
// strict parser" is testable against our own reader. `write_json_string`
// escapes control characters and passes non-ASCII UTF-8 through untouched;
// escaping round-trips through `parse`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace sntrust::json {

/// Writes `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped; non-ASCII bytes passed through as UTF-8).
void write_json_string(std::ostream& out, const std::string& s);

/// `write_json_string` into a string.
std::string escape(const std::string& s);

class Value;
using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;  ///< insertion-ordered

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  /// Strict parse of a complete JSON document (throws std::runtime_error
  /// with a byte offset on any violation, including trailing characters).
  static Value parse(const std::string& text);

  // Construction helpers for writers.
  static Value null();
  static Value boolean(bool value);
  static Value number(double value);
  static Value integer(std::int64_t value);
  static Value string(std::string value);
  static Value array(Array items);
  static Value object(Object members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  // Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< number truncated toward zero
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Serializes compactly (no whitespace). Integral numbers print without a
  /// decimal point; other doubles print shortest-round-trip.
  void write(std::ostream& out) const;
  std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  bool int_valued_ = false;  ///< number materialized from an integer
  std::int64_t int_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace sntrust::json

#include "flow/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sntrust {

FlowNetwork::FlowNetwork(std::uint32_t num_nodes)
    : num_nodes_(num_nodes), adjacency_(num_nodes) {}

void FlowNetwork::add_arc(std::uint32_t u, std::uint32_t v,
                          std::uint64_t capacity) {
  if (u >= num_nodes_ || v >= num_nodes_)
    throw std::out_of_range("FlowNetwork::add_arc: endpoint out of range");
  const std::size_t fwd = arcs_.size();
  arcs_.push_back({v, capacity, fwd + 1});
  arcs_.push_back({u, 0, fwd});
  adjacency_[u].push_back(fwd);
  adjacency_[v].push_back(fwd + 1);
  forward_arc_index_.push_back(fwd);
  original_capacity_.push_back(capacity);
}

std::uint64_t FlowNetwork::max_flow(std::uint32_t source, std::uint32_t sink) {
  if (source >= num_nodes_ || sink >= num_nodes_)
    throw std::out_of_range("FlowNetwork::max_flow: endpoint out of range");
  if (source == sink)
    throw std::invalid_argument("FlowNetwork::max_flow: source == sink");

  std::uint64_t total = 0;
  std::vector<std::size_t> parent_arc(num_nodes_);
  std::vector<std::uint8_t> visited(num_nodes_);
  std::vector<std::uint32_t> queue;
  queue.reserve(num_nodes_);

  for (;;) {
    std::fill(visited.begin(), visited.end(), 0);
    queue.clear();
    queue.push_back(source);
    visited[source] = 1;
    bool found = false;
    for (std::size_t head = 0; head < queue.size() && !found; ++head) {
      const std::uint32_t u = queue[head];
      for (const std::size_t arc : adjacency_[u]) {
        const HalfArc& a = arcs_[arc];
        if (a.capacity == 0 || visited[a.to]) continue;
        visited[a.to] = 1;
        parent_arc[a.to] = arc;
        if (a.to == sink) { found = true; break; }
        queue.push_back(a.to);
      }
    }
    if (!found) break;

    // Bottleneck along the BFS path.
    std::uint64_t bottleneck = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t v = sink; v != source;) {
      const HalfArc& a = arcs_[parent_arc[v]];
      bottleneck = std::min(bottleneck, a.capacity);
      v = arcs_[a.reverse].to;
    }
    for (std::uint32_t v = sink; v != source;) {
      HalfArc& a = arcs_[parent_arc[v]];
      a.capacity -= bottleneck;
      arcs_[a.reverse].capacity += bottleneck;
      v = arcs_[a.reverse].to;
    }
    total += bottleneck;
  }
  return total;
}

std::uint64_t FlowNetwork::arc_flow(std::size_t arc) const {
  if (arc >= forward_arc_index_.size())
    throw std::out_of_range("FlowNetwork::arc_flow: bad arc index");
  const std::size_t idx = forward_arc_index_[arc];
  return original_capacity_[arc] - arcs_[idx].capacity;
}

}  // namespace sntrust

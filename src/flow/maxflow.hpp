// Integer max-flow on small capacity networks (BFS augmentation /
// Edmonds-Karp). Used by SumUp's vote collection, where link capacities are
// the ticket counts assigned within the vote envelope.
#pragma once

#include <cstdint>
#include <vector>

namespace sntrust {

/// Directed flow network over dense node ids. Capacities are per directed
/// arc; adding (u, v, c) twice accumulates capacity.
class FlowNetwork {
 public:
  explicit FlowNetwork(std::uint32_t num_nodes);

  std::uint32_t num_nodes() const noexcept { return num_nodes_; }

  /// Adds a directed arc u -> v with capacity `capacity` (and the implicit
  /// residual reverse arc). Throws std::out_of_range on bad endpoints.
  void add_arc(std::uint32_t u, std::uint32_t v, std::uint64_t capacity);

  /// Computes the max flow from `source` to `sink`; mutates residual
  /// capacities (call once per network, or rebuild). Throws on bad ids or
  /// source == sink.
  std::uint64_t max_flow(std::uint32_t source, std::uint32_t sink);

  /// Flow currently routed through arc index `arc` (as returned by order of
  /// add_arc calls). Valid after max_flow().
  std::uint64_t arc_flow(std::size_t arc) const;

 private:
  struct HalfArc {
    std::uint32_t to = 0;
    std::uint64_t capacity = 0;
    std::size_t reverse = 0;  ///< index of the paired residual arc
  };

  std::uint32_t num_nodes_;
  std::vector<std::vector<std::size_t>> adjacency_;  // node -> arc indices
  std::vector<HalfArc> arcs_;
  std::vector<std::uint64_t> original_capacity_;  // per forward arc
  std::vector<std::size_t> forward_arc_index_;    // add_arc order -> arcs_ idx
};

}  // namespace sntrust

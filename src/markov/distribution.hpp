// Probability distributions over graph vertices and the total variation
// distance used throughout the mixing-time measurement (Sec. III-C, Eq. 2).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// Dense probability vector over the n vertices.
using Distribution = std::vector<double>;

/// Point mass at `vertex`.
Distribution dirac(VertexId n, VertexId vertex);

/// Stationary distribution of the simple random walk: pi_v = deg(v) / 2m.
/// Throws std::invalid_argument if the graph has no edges.
Distribution stationary_distribution(const Graph& g);

/// Total variation distance ||a - b||_tv = 1/2 * sum_v |a_v - b_v|.
/// Preconditions: equal sizes.
double total_variation(const Distribution& a, const Distribution& b);

/// Sum of entries (for validating near-1 mass in tests).
double mass(const Distribution& d);

}  // namespace sntrust

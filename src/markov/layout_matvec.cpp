#include "markov/layout_matvec.hpp"

#include <stdexcept>

#include "parallel/parallel.hpp"

namespace sntrust {

namespace {

/// Same chunking as the plain matvecs (transition.cpp): rows are short
/// gathers, so only large graphs benefit from fanning out.
constexpr std::size_t kMatvecGrain = 2048;

}  // namespace

LayoutMatvec::LayoutMatvec(const Graph& g,
                           std::shared_ptr<const LayoutData> data)
    : data_(std::move(data)) {
  if (!data_)
    throw std::invalid_argument("LayoutMatvec: null layout (plain has none)");
  if (data_->num_vertices() != g.num_vertices())
    throw std::invalid_argument("LayoutMatvec: layout built for another graph");
  p_int_.resize(data_->num_vertices());
  pscaled_.resize(data_->num_vertices());
  out_int_.resize(data_->num_vertices());
}

void LayoutMatvec::step(StepKind kind, double alpha, const Distribution& p,
                        Distribution& out) {
  const VertexId n = data_->num_vertices();
  if (p.size() != n)
    throw std::invalid_argument("LayoutMatvec::step: size mismatch");
  if (&p == &out)
    throw std::invalid_argument("LayoutMatvec::step: out must not alias p");
  out.resize(n);

  const VertexId* const to_external = data_->map().to_external.data();
  const VertexId* const to_internal = data_->map().to_internal.data();
  const double* const degree = data_->degree_double().data();
  const double* const src = p.data();
  double* const p_int = p_int_.data();
  double* const pscaled = pscaled_.data();
  double* const out_int = out_int_.data();

  // Permute in + pre-divide, fused. Each quotient is the exact double the
  // plain kernel computes per edge (the skip-zero guard there only avoids
  // work: 0/deg is +0.0, which a nonnegative accumulator absorbs bitwise).
  // Isolated vertices yield 0/0 = NaN here, but a degree-0 vertex is never
  // anyone's target, so the lane is never gathered.
  parallel::parallel_for(
      0, n,
      [&](std::size_t iv, std::uint32_t) {
        const double value = src[to_external[iv]];
        p_int[iv] = value;
        pscaled[iv] = value / degree[iv];
      },
      kMatvecGrain);

  // Row gathers in internal space: strict stored order (no simd reduction —
  // reassociation would break the bitwise contract).
  const LayoutData& data = *data_;
  switch (kind) {
    case StepKind::kPlain:
      parallel::parallel_for(
          0, n,
          [&](std::size_t iv, std::uint32_t) {
            double acc = 0.0;
            data.for_each_target(static_cast<VertexId>(iv),
                                 [&](VertexId w) { acc += pscaled[w]; });
            out_int[iv] = acc;
          },
          kMatvecGrain);
      break;
    case StepKind::kLazy:
      parallel::parallel_for(
          0, n,
          [&](std::size_t iv, std::uint32_t) {
            double acc = 0.0;
            data.for_each_target(static_cast<VertexId>(iv),
                                 [&](VertexId w) { acc += pscaled[w]; });
            out_int[iv] = 0.5 * acc + 0.5 * p_int[iv];
          },
          kMatvecGrain);
      break;
    case StepKind::kModulated:
      parallel::parallel_for(
          0, n,
          [&](std::size_t iv, std::uint32_t) {
            double acc = 0.0;
            data.for_each_target(static_cast<VertexId>(iv),
                                 [&](VertexId w) { acc += pscaled[w]; });
            out_int[iv] = alpha * p_int[iv] + (1.0 - alpha) * acc;
          },
          kMatvecGrain);
      break;
  }

  // Permute out (gather form: each external row reads its own lane, so the
  // pass parallelizes without write conflicts).
  double* const dst = out.data();
  parallel::parallel_for(
      0, n,
      [&](std::size_t v, std::uint32_t) { dst[v] = out_int[to_internal[v]]; },
      kMatvecGrain);
}

}  // namespace sntrust

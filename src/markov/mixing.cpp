#include "markov/mixing.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/components.hpp"
#include "markov/walker.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace sntrust {

std::vector<double> MixingCurves::mean_curve() const {
  if (tvd.empty()) return {};
  std::vector<double> mean(tvd.front().size(), 0.0);
  for (const auto& curve : tvd)
    for (std::size_t t = 0; t < curve.size(); ++t) mean[t] += curve[t];
  for (double& v : mean) v /= static_cast<double>(tvd.size());
  return mean;
}

std::vector<double> MixingCurves::max_curve() const {
  if (tvd.empty()) return {};
  std::vector<double> worst(tvd.front().size(), 0.0);
  for (const auto& curve : tvd)
    for (std::size_t t = 0; t < curve.size(); ++t)
      worst[t] = std::max(worst[t], curve[t]);
  return worst;
}

MixingCurves measure_mixing(const Graph& g, const MixingOptions& options) {
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument("measure_mixing: graph must have edges");
  if (options.num_sources == 0)
    throw std::invalid_argument("measure_mixing: need at least one source");
  if (!is_connected(g))
    throw std::invalid_argument("measure_mixing: graph must be connected");

  const obs::Span span{"measure_mixing", "markov"};
  Rng rng{options.seed};
  const std::uint32_t k = std::min<std::uint32_t>(options.num_sources, n);

  MixingCurves out;
  out.sources = rng.sample_without_replacement(n, k);

  const Distribution pi = stationary_distribution(g);
  const StationaryPrefix prefix{pi};
  const FrontierWalk::Options kernel{
      options.kernel.value_or(kernel_mode()),
      options.kernel_dense_fraction.value_or(kernel_dense_fraction())};
  const StepKind kind = options.lazy ? StepKind::kLazy : StepKind::kPlain;
  // One curve slot per source position: workers write disjoint slots, so
  // the result is bitwise identical for any thread count. The kernel mode
  // never changes the values either (see markov/frontier.hpp), only how
  // much of the graph each step touches.
  out.tvd.assign(k, {});
  obs::ProgressMeter progress{"mixing sources", k};
  struct Scratch {
    std::vector<FrontierWalk> walk;  // 0 or 1 entries; lazily constructed
  };
  std::vector<Scratch> scratch(parallel::plan_workers(k));
  parallel::parallel_for(0, k, [&](std::size_t i, std::uint32_t worker) {
    Scratch& s = scratch[worker];
    if (s.walk.empty()) s.walk.emplace_back(g, kernel);
    FrontierWalk& walk = s.walk.front();
    walk.reset(out.sources[i]);
    std::vector<double> curve;
    curve.reserve(options.max_walk_length + 1);
    curve.push_back(walk.tvd(pi, prefix));
    for (std::uint32_t t = 1; t <= options.max_walk_length; ++t) {
      walk.step(kind);
      curve.push_back(walk.tvd(pi, prefix));
    }
    out.tvd[i] = std::move(curve);
    progress.tick();
  });
  obs::count("mixing.sources", k);
  obs::count("mixing.distribution_steps",
             static_cast<std::uint64_t>(k) * options.max_walk_length);
  return out;
}

MixingCurves measure_mixing_monte_carlo(const Graph& g,
                                        const MixingOptions& options,
                                        std::uint32_t walks_per_point) {
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument("measure_mixing_monte_carlo: graph must have edges");
  if (options.num_sources == 0 || walks_per_point == 0)
    throw std::invalid_argument(
        "measure_mixing_monte_carlo: need sources and walks");
  if (!is_connected(g))
    throw std::invalid_argument(
        "measure_mixing_monte_carlo: graph must be connected");

  Rng rng{options.seed};
  const std::uint32_t k = std::min<std::uint32_t>(options.num_sources, n);

  MixingCurves out;
  out.sources = rng.sample_without_replacement(n, k);
  const Distribution pi = stationary_distribution(g);

  // Each source gets a walk batch with its own Rng stream derived from the
  // source *position*, so curves depend only on (seed, i) — never on which
  // worker ran the batch or in what order.
  const std::uint64_t walker_base = rng();
  out.tvd.assign(k, {});
  const obs::Span span{"measure_mixing_monte_carlo", "markov"};
  obs::ProgressMeter progress{"monte-carlo mixing sources", k};
  struct Scratch {
    std::vector<std::uint32_t> counts;
    Distribution empirical;
  };
  std::vector<Scratch> scratch(parallel::plan_workers(k));
  parallel::parallel_for(0, k, [&](std::size_t i, std::uint32_t worker) {
    Scratch& s = scratch[worker];
    s.counts.assign(n, 0u);
    if (s.empirical.size() != n) s.empirical.assign(n, 0.0);
    RandomWalker walker{g, stream_seed(walker_base, i)};
    const VertexId source = out.sources[i];
    std::vector<double> curve;
    curve.reserve(options.max_walk_length + 1);
    for (std::uint32_t t = 0; t <= options.max_walk_length; ++t) {
      std::fill(s.counts.begin(), s.counts.end(), 0u);
      for (std::uint32_t w = 0; w < walks_per_point; ++w)
        ++s.counts[walker.walk_endpoint(source, t)];
      for (VertexId v = 0; v < n; ++v)
        s.empirical[v] = static_cast<double>(s.counts[v]) / walks_per_point;
      curve.push_back(total_variation(s.empirical, pi));
    }
    out.tvd[i] = std::move(curve);
    progress.tick();
  });
  return out;
}

std::uint32_t mixing_time_estimate(const MixingCurves& curves, double epsilon) {
  const std::vector<double> worst = curves.max_curve();
  for (std::size_t t = 0; t < worst.size(); ++t)
    if (worst[t] <= epsilon) return static_cast<std::uint32_t>(t);
  return 0xFFFFFFFFu;
}

}  // namespace sntrust

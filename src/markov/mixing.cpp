#include "markov/mixing.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/checkpoint.hpp"
#include "exec/sweep.hpp"
#include "graph/components.hpp"
#include "markov/walker.hpp"
#include "obs/diag.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

// Sweep payloads: one TVD curve as a JSON array. Both fresh and restored
// curves pass through dump+parse (doubles are shortest-round-trip, so the
// trip is bitwise lossless), which is what makes a resumed sweep aggregate
// exactly what an uninterrupted one would.
std::string encode_curve(const std::vector<double>& curve) {
  json::Array items;
  items.reserve(curve.size());
  for (const double v : curve) items.push_back(json::Value::number(v));
  return json::Value::array(std::move(items)).dump();
}

std::vector<double> decode_curve(const std::string& payload) {
  const json::Value value = json::Value::parse(payload);
  std::vector<double> curve;
  curve.reserve(value.as_array().size());
  for (const json::Value& v : value.as_array()) curve.push_back(v.as_number());
  return curve;
}

// Rebuilds (sources, tvd) keeping only the sources whose payload exists;
// failed sources are dropped from the curve set, matching their absence
// from the aggregate a degraded run reports.
void collect_curves(const exec::SweepResult& swept, MixingCurves& out) {
  std::vector<VertexId> sources;
  std::vector<std::vector<double>> tvd;
  sources.reserve(out.sources.size());
  tvd.reserve(out.sources.size());
  for (std::size_t i = 0; i < swept.payloads.size(); ++i) {
    if (swept.payloads[i].empty()) continue;
    sources.push_back(out.sources[i]);
    tvd.push_back(decode_curve(swept.payloads[i]));
  }
  out.sources = std::move(sources);
  out.tvd = std::move(tvd);
}

// Estimator diagnostics over the collected curves (SNTRUST_DIAG). Runs on
// the serial aggregation path after collect_curves, in source-index order,
// so the recorded traces are bitwise identical at any thread count and the
// measurement itself is untouched. A source "converged" when its TVD curve
// either crossed the diag epsilon or plateaued strictly before the walk
// cap; a curve still visibly decaying when the cap hit is flagged.
void record_mixing_diag(const std::string& kind, const MixingCurves& curves) {
  if (!obs::diag_enabled()) return;
  const double epsilon = obs::diag_epsilon();
  double final_sum = 0.0, final_sumsq = 0.0;
  double cross_sum = 0.0, cross_sumsq = 0.0;
  std::uint64_t crossed = 0;
  for (std::size_t i = 0; i < curves.tvd.size(); ++i) {
    const std::vector<double>& curve = curves.tvd[i];
    obs::ConvergenceTrace trace;
    for (const double v : curve) trace.add(v);
    bool crossed_eps = false;
    for (std::size_t t = 0; t < curve.size(); ++t) {
      if (curve[t] <= epsilon) {
        crossed_eps = true;
        cross_sum += static_cast<double>(t);
        cross_sumsq += static_cast<double>(t) * static_cast<double>(t);
        ++crossed;
        break;
      }
    }
    const bool plateaued =
        !trace.empty() && trace.plateau_iteration() + 1 < trace.iterations();
    const bool converged = crossed_eps || plateaued;
    obs::DiagRegistry::instance().record_trace(
        obs::summarize_trace(kind, curves.sources[i], trace, converged));
    if (!converged)
      obs::DiagRegistry::instance().record_nonconverged(
          kind, curves.sources[i], trace.iterations(), trace.final_value());
    final_sum += trace.final_value();
    final_sumsq += trace.final_value() * trace.final_value();
  }
  if (!curves.tvd.empty())
    obs::DiagRegistry::instance().record_estimate(
        kind + ".tvd_final",
        obs::mean_ci95(final_sum, final_sumsq, curves.tvd.size()));
  if (crossed > 0)
    obs::DiagRegistry::instance().record_estimate(
        kind + ".time_to_eps", obs::mean_ci95(cross_sum, cross_sumsq, crossed));
}

}  // namespace

std::vector<double> MixingCurves::mean_curve() const {
  if (tvd.empty()) return {};
  std::vector<double> mean(tvd.front().size(), 0.0);
  for (const auto& curve : tvd)
    for (std::size_t t = 0; t < curve.size(); ++t) mean[t] += curve[t];
  for (double& v : mean) v /= static_cast<double>(tvd.size());
  return mean;
}

std::vector<double> MixingCurves::max_curve() const {
  if (tvd.empty()) return {};
  std::vector<double> worst(tvd.front().size(), 0.0);
  for (const auto& curve : tvd)
    for (std::size_t t = 0; t < curve.size(); ++t)
      worst[t] = std::max(worst[t], curve[t]);
  return worst;
}

MixingCurves measure_mixing(const Graph& g, const MixingOptions& options) {
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument("measure_mixing: graph must have edges");
  if (options.num_sources == 0)
    throw std::invalid_argument("measure_mixing: need at least one source");
  if (!is_connected(g))
    throw std::invalid_argument("measure_mixing: graph must be connected");

  const obs::Span span{"measure_mixing", "markov"};
  Rng rng{options.seed};
  const std::uint32_t k = std::min<std::uint32_t>(options.num_sources, n);

  MixingCurves out;
  out.sources = rng.sample_without_replacement(n, k);

  const Distribution pi = stationary_distribution(g);
  const StationaryPrefix prefix{pi};
  const FrontierWalk::Options kernel{
      options.kernel.value_or(kernel_mode()),
      options.kernel_dense_fraction.value_or(kernel_dense_fraction()),
      options.layout.value_or(graph_layout())};
  const StepKind kind = options.lazy ? StepKind::kLazy : StepKind::kPlain;
  // One curve slot per source position: workers write disjoint slots, so
  // the result is bitwise identical for any thread count. The kernel mode
  // never changes the values either (see markov/frontier.hpp), only how
  // much of the graph each step touches — which is also why it stays out of
  // the checkpoint fingerprint.
  obs::ProgressMeter progress{"mixing sources", k};
  struct Scratch {
    std::vector<FrontierWalk> walk;  // 0 or 1 entries; lazily constructed
  };
  std::vector<Scratch> scratch(parallel::plan_workers(k));

  exec::SweepOptions sweep;
  sweep.kind = "measure_mixing";
  sweep.fault_site = "markov";
  sweep.token = exec::process_token();
  sweep.fingerprint = exec::fingerprint(
      {n, g.num_edges(), k, options.max_walk_length,
       options.lazy ? 1ULL : 0ULL, options.seed, exec::graph_fingerprint(g)});
  const exec::SweepResult swept = exec::run_sweep(
      k, sweep, [&](std::size_t i, std::uint32_t worker) {
        Scratch& s = scratch[worker];
        if (s.walk.empty()) s.walk.emplace_back(g, kernel);
        FrontierWalk& walk = s.walk.front();
        walk.reset(out.sources[i]);
        std::vector<double> curve;
        curve.reserve(options.max_walk_length + 1);
        curve.push_back(walk.tvd(pi, prefix));
        for (std::uint32_t t = 1; t <= options.max_walk_length; ++t) {
          walk.step(kind);
          curve.push_back(walk.tvd(pi, prefix));
        }
        progress.tick();
        return encode_curve(curve);
      });
  collect_curves(swept, out);
  record_mixing_diag("mixing.tvd", out);
  obs::count("mixing.sources", out.sources.size());
  obs::count("mixing.distribution_steps",
             swept.computed * options.max_walk_length);
  return out;
}

MixingCurves measure_mixing_monte_carlo(const Graph& g,
                                        const MixingOptions& options,
                                        std::uint32_t walks_per_point) {
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument("measure_mixing_monte_carlo: graph must have edges");
  if (options.num_sources == 0 || walks_per_point == 0)
    throw std::invalid_argument(
        "measure_mixing_monte_carlo: need sources and walks");
  if (!is_connected(g))
    throw std::invalid_argument(
        "measure_mixing_monte_carlo: graph must be connected");

  Rng rng{options.seed};
  const std::uint32_t k = std::min<std::uint32_t>(options.num_sources, n);

  MixingCurves out;
  out.sources = rng.sample_without_replacement(n, k);
  const Distribution pi = stationary_distribution(g);

  // Each source gets a walk batch with its own Rng stream derived from the
  // source *position*, so curves depend only on (seed, i) — never on which
  // worker ran the batch or in what order.
  const std::uint64_t walker_base = rng();
  const obs::Span span{"measure_mixing_monte_carlo", "markov"};
  obs::ProgressMeter progress{"monte-carlo mixing sources", k};
  struct Scratch {
    std::vector<std::uint32_t> counts;
    Distribution empirical;
  };
  std::vector<Scratch> scratch(parallel::plan_workers(k));

  exec::SweepOptions sweep;
  sweep.kind = "measure_mixing_monte_carlo";
  sweep.fault_site = "markov";
  sweep.token = exec::process_token();
  sweep.fingerprint = exec::fingerprint(
      {n, g.num_edges(), k, options.max_walk_length, walks_per_point,
       options.seed, exec::graph_fingerprint(g)});
  const exec::SweepResult swept = exec::run_sweep(
      k, sweep, [&](std::size_t i, std::uint32_t worker) {
        Scratch& s = scratch[worker];
        s.counts.assign(n, 0u);
        if (s.empirical.size() != n) s.empirical.assign(n, 0.0);
        RandomWalker walker{g, stream_seed(walker_base, i)};
        const VertexId source = out.sources[i];
        std::vector<double> curve;
        curve.reserve(options.max_walk_length + 1);
        for (std::uint32_t t = 0; t <= options.max_walk_length; ++t) {
          std::fill(s.counts.begin(), s.counts.end(), 0u);
          for (std::uint32_t w = 0; w < walks_per_point; ++w)
            ++s.counts[walker.walk_endpoint(source, t)];
          for (VertexId v = 0; v < n; ++v)
            s.empirical[v] =
                static_cast<double>(s.counts[v]) / walks_per_point;
          curve.push_back(total_variation(s.empirical, pi));
        }
        progress.tick();
        return encode_curve(curve);
      });
  collect_curves(swept, out);
  record_mixing_diag("mixing.monte_carlo", out);
  return out;
}

std::uint32_t mixing_time_estimate(const MixingCurves& curves, double epsilon) {
  const std::vector<double> worst = curves.max_curve();
  for (std::size_t t = 0; t < worst.size(); ++t)
    if (worst[t] <= epsilon) return static_cast<std::uint32_t>(t);
  return 0xFFFFFFFFu;
}

}  // namespace sntrust

#include "markov/dense_spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"

namespace sntrust {

DenseSpectrum dense_spectrum(const Graph& g, std::uint32_t max_sweeps) {
  const obs::Span span{"dense_spectrum", "markov"};
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument("dense_spectrum: graph must have edges");
  if (n > 256)
    throw std::invalid_argument("dense_spectrum: n must be <= 256");

  // Build N densely.
  std::vector<double> inv_sqrt_deg(n, 0.0);
  for (VertexId v = 0; v < n; ++v)
    if (g.degree(v) > 0)
      inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.degree(v)));
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  parallel::parallel_for(
      0, n,
      [&](std::size_t v, std::uint32_t) {
        for (const VertexId w : g.neighbors(v))
          a[v][w] = inv_sqrt_deg[v] * inv_sqrt_deg[w];
      },
      /*grain=*/16);
  // The Jacobi rotations themselves stay serial: each (p, q) rotation
  // mutates two full rows and columns, and with the n <= 256 cap the
  // per-rotation ranges are far below any profitable fan-out grain.

  // Eigenvector accumulator starts as identity.
  std::vector<std::vector<double>> vectors(n, std::vector<double>(n, 0.0));
  for (VertexId i = 0; i < n; ++i) vectors[i][i] = 1.0;

  // Cyclic Jacobi sweeps.
  for (std::uint32_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (VertexId p = 0; p < n; ++p)
      for (VertexId q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    if (off < 1e-22) break;
    obs::count("jacobi.sweeps");

    for (VertexId p = 0; p < n; ++p) {
      for (VertexId q = p + 1; q < n; ++q) {
        const double apq = a[p][q];
        if (std::fabs(apq) < 1e-15) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q.
        for (VertexId k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (VertexId k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (VertexId k = 0; k < n; ++k) {
          const double vkp = vectors[k][p];
          const double vkq = vectors[k][q];
          vectors[k][p] = c * vkp - s * vkq;
          vectors[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a[x][x] > a[y][y]; });

  DenseSpectrum out;
  out.eigenvalues.reserve(n);
  out.eigenvectors.reserve(n);
  for (const std::size_t k : order) {
    out.eigenvalues.push_back(a[k][k]);
    std::vector<double> vec(n);
    for (VertexId i = 0; i < n; ++i) vec[i] = vectors[i][k];
    out.eigenvectors.push_back(std::move(vec));
  }
  return out;
}

Distribution exact_walk_distribution(const Graph& g,
                                     const DenseSpectrum& spectrum,
                                     VertexId source, std::uint32_t steps) {
  const VertexId n = g.num_vertices();
  if (source >= n)
    throw std::out_of_range("exact_walk_distribution: source out of range");
  if (spectrum.eigenvalues.size() != n)
    throw std::invalid_argument(
        "exact_walk_distribution: spectrum size mismatch");

  // p_t = e_s P^t; with P = D^{-1/2} N D^{1/2} and N = sum_k l_k u_k u_k^T:
  //   p_t(j) = sum_k l_k^t * u_k(s) * d_s^{-1/2} * u_k(j) * d_j^{1/2}
  // Note the row-vector convention: p_t = e_s D^{-1/2} N^t D^{1/2}.
  std::vector<double> sqrt_deg(n, 0.0), inv_sqrt_deg(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    if (g.degree(v) == 0) continue;
    sqrt_deg[v] = std::sqrt(static_cast<double>(g.degree(v)));
    inv_sqrt_deg[v] = 1.0 / sqrt_deg[v];
  }

  std::vector<double> scales(n);
  for (std::size_t k = 0; k < spectrum.eigenvalues.size(); ++k)
    scales[k] = std::pow(spectrum.eigenvalues[k],
                         static_cast<double>(steps)) *
                spectrum.eigenvectors[k][source] * inv_sqrt_deg[source];

  // Row-partitioned dense matvec: entry j sums the spectral components in k
  // order (the same order as the former k-outer loop, so values are bitwise
  // unchanged), and rows are independent across workers.
  Distribution p(n, 0.0);
  parallel::parallel_for(
      0, n,
      [&](std::size_t j, std::uint32_t) {
        double acc = 0.0;
        for (std::size_t k = 0; k < spectrum.eigenvalues.size(); ++k) {
          if (scales[k] == 0.0) continue;
          acc += scales[k] * spectrum.eigenvectors[k][j] * sqrt_deg[j];
        }
        // Clamp tiny negative round-off.
        p[j] = std::max(0.0, acc);
      },
      /*grain=*/64);
  return p;
}

double exact_slem(const DenseSpectrum& spectrum) {
  if (spectrum.eigenvalues.size() < 2)
    throw std::invalid_argument("exact_slem: need >= 2 eigenvalues");
  return std::max(std::fabs(spectrum.eigenvalues[1]),
                  std::fabs(spectrum.eigenvalues.back()));
}

}  // namespace sntrust

// Frontier-sparse kernels for evolving walk distributions from point-mass
// sources (the regime of the paper's sampling method, Eq. 2): the support of
// pi^{(i)} P^t is tiny for the first many steps, so the O(m) dense gather and
// the O(n) total-variation pass waste almost all of their work. This layer
// tracks the distribution's support explicitly, computes each step as a pull
// restricted to frontier-adjacent rows, and measures TVD against the
// stationary distribution in O(|support|) with a precomputed pi prefix
// structure.
//
// Exactness contract: a candidate row gathers over its *full adjacency* in
// CSR order skipping zero entries — the identical summation the dense kernel
// performs for that row — so every kernel mode (dense, sparse, auto) produces
// bitwise identical distributions and TVD curves. The modes differ only in
// how much work they do, never in what they compute; `SNTRUST_KERNEL`
// selects the process-wide default and tests pin the identity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "markov/distribution.hpp"
#include "markov/layout_matvec.hpp"
#include "markov/transition.hpp"  // StepKind

namespace sntrust {
namespace obs {
class Counter;
class QuantileHistogram;
}  // namespace obs

/// Kernel selection for distribution evolution. All modes are bitwise
/// identical; they trade bookkeeping for touched-edge savings.
enum class KernelMode {
  kAuto,    ///< sparse pull until the frontier degree crosses the dense
            ///< threshold, then dense gathers (the default)
  kDense,   ///< always the full parallel row gather
  kSparse,  ///< sparse pull until the support saturates to all vertices
};

std::string to_string(KernelMode mode);
/// Parses "auto" / "dense" / "sparse" (case-insensitive); nullopt otherwise.
std::optional<KernelMode> parse_kernel_mode(const std::string& text);

/// Process-wide kernel mode: the runtime override if set, else
/// SNTRUST_KERNEL (default auto).
KernelMode kernel_mode();
/// Runtime override of the process-wide mode (tests, --kernel).
void set_kernel_mode(KernelMode mode);
/// Drops the runtime override, restoring the SNTRUST_KERNEL default.
void clear_kernel_mode_override();

/// RAII kernel-mode override; restores the previous state on destruction.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode);
  ~ScopedKernelMode();
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  int previous_;  // encoded previous override (-1 = none)
};

/// Auto-mode crossover threshold: a step uses the dense gather when the
/// summed degree of the frontier-adjacent candidate rows reaches
/// `fraction * 2m`. SNTRUST_KERNEL_THRESHOLD (default 0.5); 0 forces dense
/// from the first step, +inf keeps the sparse pull until saturation.
double kernel_dense_fraction();

/// Prefix sums of the stationary distribution: prefix(v) = sum_{u < v} pi_u.
/// The support-aware TVD charges the mass of every gap between consecutive
/// support vertices as one O(1) prefix difference instead of an O(gap) scan.
class StationaryPrefix {
 public:
  explicit StationaryPrefix(const Distribution& pi);

  /// sum_{v in [begin, end)} pi_v.
  double range_mass(VertexId begin, VertexId end) const {
    return prefix_[end] - prefix_[begin];
  }
  VertexId size() const { return static_cast<VertexId>(prefix_.size() - 1); }

 private:
  std::vector<double> prefix_;  // n + 1 entries
};

/// Support-aware total variation distance to the stationary distribution:
///   0.5 * ( sum_{v in supp} |p_v - pi_v|  +  sum_{v not in supp} pi_v )
/// with the complement mass folded gap-by-gap through `prefix` (ascending
/// order, so the grouping is deterministic). `support` must be sorted
/// ascending and cover every nonzero of `p`; vertices listed with p_v == 0
/// are harmless (their two contributions cancel exactly in real arithmetic).
double support_tvd(const Distribution& p, const std::vector<VertexId>& support,
                   const Distribution& pi, const StationaryPrefix& prefix);

/// Reusable frontier-walk workspace bound to one graph: a distribution, its
/// sorted support, and the scratch needed to expand the frontier. Sweeps
/// construct one per worker and reset() it per source.
///
/// Support evolution is structural (next support = candidate rows =
/// neighbours of the support, plus the support itself for self-weighted
/// kinds) and runs identically in every kernel mode, so TVD grouping — and
/// therefore every curve value — is mode-independent. Once the support
/// saturates to all n vertices (a fixed point of the expansion on any graph
/// without isolated vertices) the walk drops the bookkeeping and runs pure
/// dense steps.
class FrontierWalk {
 public:
  struct Options {
    KernelMode mode = KernelMode::kAuto;
    /// Dense crossover as a fraction of 2m (see kernel_dense_fraction()).
    double dense_fraction = 0.5;
    /// Adjacency substrate for the dense gathers (graph/layout.hpp). Plain
    /// runs the CSR kernels directly; the degree-ordered layouts route
    /// through LayoutMatvec. Bitwise identical either way.
    GraphLayout layout = GraphLayout::kPlain;
  };

  /// Resolves mode / threshold from the process-wide defaults.
  explicit FrontierWalk(const Graph& g);
  FrontierWalk(const Graph& g, const Options& options);

  /// Re-points the walk at a point mass on `source`.
  void reset(VertexId source);

  /// Advances one step of the chosen chain (alpha is the kModulated retain
  /// weight, in [0, 1)).
  void step(StepKind kind, double alpha = 0.0);

  /// TVD of the current distribution against pi; support-aware until the
  /// walk saturates. `pi`/`prefix` must match the graph's vertex count.
  double tvd(const Distribution& pi, const StationaryPrefix& prefix) const;

  const Distribution& distribution() const { return p_; }
  /// Sorted structural support of the current distribution. Meaningful only
  /// while !saturated(); saturated walks cover every vertex.
  const std::vector<VertexId>& support() const { return support_; }
  bool saturated() const { return saturated_; }

  /// True when the most recent step() used the dense gather.
  bool last_step_dense() const { return last_step_dense_; }
  /// Summed degree of the candidate rows in the most recent step (0 for
  /// saturated dense steps — no candidate set is built).
  EdgeIndex last_frontier_degree() const { return last_frontier_degree_; }

 private:
  void build_candidates(bool include_support);
  void clear_buffer();
  void dense_step(StepKind kind, double alpha);
  void sparse_step(StepKind kind, double alpha);
  void commit_step();

  const Graph& graph_;
  KernelMode mode_;
  double dense_fraction_;
  std::optional<LayoutMatvec> matvec_;  // engaged when layout != plain

  Distribution p_, buffer_;
  std::vector<VertexId> support_;         // sorted support of p_
  std::vector<VertexId> buffer_support_;  // sorted support of buffer_
  std::vector<VertexId> candidates_;      // rows the pending step writes
  std::vector<std::uint32_t> seen_;       // epoch marks for frontier expansion
  std::uint32_t epoch_ = 0;
  bool saturated_ = false;
  bool buffer_saturated_ = false;

  bool last_step_dense_ = false;
  EdgeIndex last_frontier_degree_ = 0;

  obs::Counter& sparse_steps_;
  obs::Counter& dense_steps_;
  obs::Counter& frontier_edges_;
  obs::QuantileHistogram& step_latency_;
};

}  // namespace sntrust

// Trust-modulated random walks (Mohaisen, Hopper, Kim — INFOCOM 2011,
// the paper's ref [16]): the observation that slow mixing correlates with
// strict trust is *used* by deliberately slowing the walk to account for
// trust. Two modulation schemes from that work:
//
//   - lazy modulation: P' = alpha I + (1 - alpha) P — every node hesitates;
//   - originator-biased modulation: with probability alpha the walk
//     teleports back to its originator, biasing the walk toward the
//     trusted source's neighbourhood (a PageRank-style restart).
//
// Both interpolate between the raw chain (alpha = 0) and total distrust
// (alpha -> 1), and both shrink the spectral gap by exactly (1 - alpha),
// which the tests pin.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "markov/distribution.hpp"

namespace sntrust {

/// One lazy-modulated step: out = alpha * p + (1 - alpha) * pP.
/// Preconditions: alpha in [0, 1).
void step_modulated(const Graph& g, const Distribution& p, Distribution& out,
                    double alpha);

/// One originator-biased step: out = alpha * dirac(originator)
/// + (1 - alpha) * pP. Preconditions: alpha in [0, 1).
void step_originator_biased(const Graph& g, const Distribution& p,
                            Distribution& out, double alpha,
                            VertexId originator);

/// Stationary distribution of the originator-biased chain, computed by
/// iterating to the fixed point (personalized-PageRank style). Converges
/// geometrically at rate (1 - alpha); throws std::invalid_argument for
/// alpha == 0 (no unique localized fixed point is sought then).
Distribution originator_stationary(const Graph& g, VertexId originator,
                                   double alpha, double tolerance = 1e-12,
                                   std::uint32_t max_iterations = 10000);

/// Mixing time of the lazy-modulated chain measured with the sampling
/// method: smallest t with max-over-sources TVD(pi, p^(i) P'^t) <= epsilon,
/// or UINT32_MAX if not reached within max_walk_length. The stationary
/// distribution is the same degree distribution as the raw chain.
std::uint32_t modulated_mixing_time(const Graph& g, double alpha,
                                    double epsilon,
                                    std::uint32_t num_sources,
                                    std::uint32_t max_walk_length,
                                    std::uint64_t seed);

}  // namespace sntrust

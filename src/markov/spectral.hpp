// Spectral machinery: second largest eigenvalue modulus (SLEM) of the
// transition matrix and the Sinclair mixing-time bounds built from it
// (paper Sec. III-C and Table I).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace sntrust {

struct SlemOptions {
  std::uint32_t max_iterations = 2000;
  /// Convergence threshold on the eigenvalue estimate between iterations.
  double tolerance = 1e-9;
  std::uint64_t seed = 7;
};

struct SlemResult {
  /// mu = max(|lambda_2|, |lambda_n|) of P.
  double mu = 0.0;
  std::uint32_t iterations = 0;
  bool converged = false;
};

/// Estimates the SLEM of the random-walk matrix P = D^{-1} A via power
/// iteration on the similar symmetric operator N = D^{-1/2} A D^{-1/2}, with
/// the known principal eigenvector (D^{1/2} 1) deflated. Requires a connected
/// graph with >= 1 edge (throws std::invalid_argument otherwise).
SlemResult second_largest_eigenvalue(const Graph& g,
                                     const SlemOptions& options = {});

/// Sinclair bounds on the mixing time T(epsilon) from mu (paper Sec. III-C):
///   lower: (mu / (1 - mu)) * ln(1 / (2 epsilon))
///   upper: (ln n + ln(1 / epsilon)) / (1 - mu)
struct MixingBounds {
  double lower = 0.0;
  double upper = 0.0;
};

/// Preconditions: 0 < mu < 1, 0 < epsilon < 1, n >= 2.
MixingBounds sinclair_bounds(double mu, double epsilon, VertexId n);

}  // namespace sntrust

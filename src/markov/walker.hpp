// Monte-Carlo random walks and SybilGuard/SybilLimit-style random *routes*.
//
// Routes differ from walks: each node fixes a random permutation between its
// incident edges, so a route entering through edge e always leaves through
// perm(e). Routes are back-traceable and convergent — the property the
// defense protocols rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace sntrust::obs {
class Counter;
}

namespace sntrust {

/// Simple random walk sampler. Instances are cheap to construct (parallel
/// sweeps build one per work item for deterministic per-index streams) but
/// not shareable across threads: walks mutate the internal Rng.
class RandomWalker {
 public:
  RandomWalker(const Graph& g, std::uint64_t seed);

  /// Walks `length` steps from `start`; returns the full vertex sequence
  /// (length + 1 entries). Throws std::invalid_argument if start is isolated.
  std::vector<VertexId> walk(VertexId start, std::uint32_t length);

  /// Endpoint of a `length`-step walk (no trajectory allocation).
  VertexId walk_endpoint(VertexId start, std::uint32_t length);

 private:
  const Graph& graph_;
  Rng rng_;
  /// Member metric handle (not a function-local static): walkers run on
  /// pool workers, so the registry lookup happens once per instance on the
  /// constructing thread instead of racing on first-use initialization.
  obs::Counter* walk_steps_;
};

/// Random-route tables: for each vertex, a uniform random permutation mapping
/// incoming edge slots to outgoing edge slots (pre-computed once per graph
/// instance, as in SybilGuard/SybilLimit).
class RouteTables {
 public:
  RouteTables(const Graph& g, std::uint64_t seed);

  /// Directed edge id for the slot-th incident edge of v (slot < deg(v)).
  /// Routes are expressed as sequences of such directed edges.
  struct Hop {
    VertexId vertex;     ///< current vertex
    std::uint32_t slot;  ///< incident-edge slot at `vertex` used to leave
  };

  /// Follows the route that starts at `start` leaving through `first_slot`
  /// for `length` edges. Returns the sequence of vertices visited
  /// (length + 1 entries, shorter only if start is isolated).
  std::vector<VertexId> route(VertexId start, std::uint32_t first_slot,
                              std::uint32_t length) const;

  /// Final directed edge (tail) of the route: the pair (second-to-last,
  /// last) vertex. Used by SybilLimit's intersection test.
  std::pair<VertexId, VertexId> route_tail(VertexId start,
                                           std::uint32_t first_slot,
                                           std::uint32_t length) const;

  const Graph& graph() const noexcept { return graph_; }

 private:
  /// Next slot when entering `v` through its incident slot `in_slot`.
  std::uint32_t out_slot(VertexId v, std::uint32_t in_slot) const {
    return perm_[perm_offset_[v] + in_slot];
  }
  /// Incident slot of edge (u -> w) at w, i.e. the position of u in w's
  /// adjacency span.
  std::uint32_t slot_at_target(VertexId u, VertexId w) const;

  const Graph& graph_;
  std::vector<std::uint64_t> perm_offset_;
  std::vector<std::uint32_t> perm_;
};

/// Route follower over *implicit* routing tables: instance i's permutation at
/// vertex v is a keyed PRP over v's incident-edge slots, evaluated on demand.
/// This is how SybilLimit's r = sqrt(m) independent routing-table instances
/// are realized without O(r * m) memory.
class HashedRoutes {
 public:
  HashedRoutes(const Graph& g, std::uint64_t seed)
      : graph_(g), seed_(seed) {}

  /// Vertices of instance `instance`'s route from `start` leaving through
  /// `first_slot`, for `length` edges.
  std::vector<VertexId> route(VertexId start, std::uint32_t first_slot,
                              std::uint32_t length,
                              std::uint32_t instance) const;

  /// Final directed edge of the route (SybilLimit's "tail").
  std::pair<VertexId, VertexId> route_tail(VertexId start,
                                           std::uint32_t first_slot,
                                           std::uint32_t length,
                                           std::uint32_t instance) const;

  const Graph& graph() const noexcept { return graph_; }

 private:
  std::uint32_t out_slot(VertexId v, std::uint32_t in_slot,
                         std::uint32_t instance) const;

  const Graph& graph_;
  std::uint64_t seed_;
};

}  // namespace sntrust

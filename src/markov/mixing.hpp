// The sampling method for measuring mixing time (paper Sec. III-C):
// evolve the exact walk distribution pi^{(i)} P^t from sampled source
// vertices i and record the total variation distance to the stationary
// distribution at each step.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "markov/distribution.hpp"
#include "markov/frontier.hpp"

namespace sntrust {

struct MixingOptions {
  /// Number of source vertices sampled uniformly at random (the paper uses
  /// 100; the cost is one matvec per source per step — frontier-sparse for
  /// short walks, O(m) once the support saturates).
  std::uint32_t num_sources = 100;
  /// Maximum walk length to evolve.
  std::uint32_t max_walk_length = 100;
  /// Use the lazy chain (I + P)/2; keeps the TVD series monotone and handles
  /// near-bipartite graphs. The paper's plots use the plain chain.
  bool lazy = false;
  std::uint64_t seed = 1;
  /// Kernel selection for the distribution evolution; unset inherits the
  /// process-wide mode (SNTRUST_KERNEL / set_kernel_mode). Every mode is
  /// bitwise identical — this only trades bookkeeping for touched edges.
  std::optional<KernelMode> kernel;
  /// Auto-mode dense crossover as a fraction of 2m; unset inherits
  /// SNTRUST_KERNEL_THRESHOLD. 0 forces dense gathers from the first step,
  /// +infinity keeps the sparse pull until the support saturates.
  std::optional<double> kernel_dense_fraction;
  /// Adjacency layout for the dense gathers; unset inherits the
  /// process-wide layout (SNTRUST_LAYOUT / set_graph_layout). Like the
  /// kernel mode, every layout is bitwise identical — it only changes the
  /// memory substrate the gathers run on.
  std::optional<GraphLayout> layout;
};

/// TVD-vs-walk-length curves for a set of sources.
struct MixingCurves {
  std::vector<VertexId> sources;
  /// tvd[s][t] = || pi - pi^{(sources[s])} P^t ||_tv, t in [0, max_len].
  std::vector<std::vector<double>> tvd;

  /// Mean TVD over sources at step t.
  std::vector<double> mean_curve() const;
  /// Max TVD over sources at step t (the max_i of Eq. 2 restricted to the
  /// sampled sources).
  std::vector<double> max_curve() const;
};

/// Measures TVD curves from sampled sources. Requires a connected graph with
/// at least one edge (throws std::invalid_argument otherwise).
MixingCurves measure_mixing(const Graph& g, const MixingOptions& options);

/// Smallest t with max-over-sources TVD <= epsilon, or nullopt-like
/// UINT32_MAX when the curve never drops below epsilon within max_walk_length.
std::uint32_t mixing_time_estimate(const MixingCurves& curves, double epsilon);

/// Monte-Carlo variant of measure_mixing: instead of evolving the exact
/// distribution, sample `walks_per_point` independent walks per (source, t)
/// and compare the *empirical* endpoint distribution to pi. This is the
/// estimator a fully decentralized measurer would use; it carries O(1/sqrt(
/// walks)) sampling noise that floors the measured TVD (the tests pin the
/// bias against the exact curves).
MixingCurves measure_mixing_monte_carlo(const Graph& g,
                                        const MixingOptions& options,
                                        std::uint32_t walks_per_point);

}  // namespace sntrust

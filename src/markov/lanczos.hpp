// Lanczos tridiagonalization for the top eigenvalues of the normalized
// adjacency operator N = D^{-1/2} A D^{-1/2}.
//
// The power-iteration SLEM (spectral.hpp) is all the paper needs; the
// Lanczos path recovers the top-k spectrum in one run — useful for the
// spectral-gap diagnostics in the ablations and as an independent check of
// the power-iteration result (the tests cross-validate the two).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

struct LanczosOptions {
  /// Number of leading eigenvalues requested (by descending value).
  std::uint32_t num_eigenvalues = 4;
  /// Krylov subspace dimension; 0 = min(n, 4 * num_eigenvalues + 32).
  std::uint32_t subspace = 0;
  std::uint64_t seed = 7;
};

struct LanczosResult {
  /// Leading eigenvalues of N in descending order (the first is 1 on a
  /// connected graph); size = min(requested, subspace).
  std::vector<double> eigenvalues;
  std::uint32_t iterations = 0;
};

/// Runs Lanczos with full reorthogonalization (the subspace sizes used here
/// are small, so the O(subspace^2 n) cost is fine). Requires a connected
/// graph with >= 1 edge.
LanczosResult lanczos_spectrum(const Graph& g,
                               const LanczosOptions& options = {});

}  // namespace sntrust

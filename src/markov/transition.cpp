#include "markov/transition.hpp"

#include <stdexcept>

namespace sntrust {

void step_distribution(const Graph& g, const Distribution& p,
                       Distribution& out) {
  const VertexId n = g.num_vertices();
  if (p.size() != n)
    throw std::invalid_argument("step_distribution: size mismatch");
  if (&p == &out)
    throw std::invalid_argument("step_distribution: out must not alias p");
  out.assign(n, 0.0);
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex begin = offsets[v];
    const EdgeIndex end = offsets[v + 1];
    if (begin == end || p[v] == 0.0) continue;
    const double share = p[v] / static_cast<double>(end - begin);
    for (EdgeIndex i = begin; i < end; ++i) out[targets[i]] += share;
  }
}

void step_distribution_lazy(const Graph& g, const Distribution& p,
                            Distribution& out) {
  step_distribution(g, p, out);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    out[v] = 0.5 * out[v] + 0.5 * p[v];
}

void evolve(const Graph& g, Distribution& p, std::uint32_t steps, bool lazy) {
  Distribution buffer(p.size());
  for (std::uint32_t s = 0; s < steps; ++s) {
    if (lazy) step_distribution_lazy(g, p, buffer);
    else step_distribution(g, p, buffer);
    p.swap(buffer);
  }
}

}  // namespace sntrust

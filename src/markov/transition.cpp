#include "markov/transition.hpp"

#include <stdexcept>

#include "parallel/parallel.hpp"

namespace sntrust {

namespace {

/// Rows per worker chunk for the O(m) matvecs: row work is a short gather,
/// so only large graphs benefit from fanning out.
constexpr std::size_t kMatvecGrain = 2048;

}  // namespace

void step_distribution(const Graph& g, const Distribution& p,
                       Distribution& out) {
  const VertexId n = g.num_vertices();
  if (p.size() != n)
    throw std::invalid_argument("step_distribution: size mismatch");
  if (&p == &out)
    throw std::invalid_argument("step_distribution: out must not alias p");
  out.resize(n);
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  // Row-partitioned gather: out[v] sums the shares arriving from v's
  // neighbours in adjacency order, so each row is independent (safe to
  // parallelize) and the result does not depend on the chunking.
  parallel::parallel_for(
      0, n,
      [&](std::size_t v, std::uint32_t) {
        double acc = 0.0;
        for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i) {
          const VertexId w = targets[i];
          if (p[w] == 0.0) continue;
          acc += p[w] / static_cast<double>(offsets[w + 1] - offsets[w]);
        }
        out[v] = acc;
      },
      kMatvecGrain);
}

void step_distribution_lazy(const Graph& g, const Distribution& p,
                            Distribution& out) {
  const VertexId n = g.num_vertices();
  if (p.size() != n)
    throw std::invalid_argument("step_distribution_lazy: size mismatch");
  if (&p == &out)
    throw std::invalid_argument("step_distribution_lazy: out must not alias p");
  out.resize(n);
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  // Lazy blend folded into the gather: one parallel row pass instead of a
  // gather followed by a second serial O(n) blend. The expression matches
  // the old two-pass result bitwise (0.5 * acc + 0.5 * p[v]).
  parallel::parallel_for(
      0, n,
      [&](std::size_t v, std::uint32_t) {
        double acc = 0.0;
        for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i) {
          const VertexId w = targets[i];
          if (p[w] == 0.0) continue;
          acc += p[w] / static_cast<double>(offsets[w + 1] - offsets[w]);
        }
        out[v] = 0.5 * acc + 0.5 * p[v];
      },
      kMatvecGrain);
}

void evolve(const Graph& g, Distribution& p, std::uint32_t steps, bool lazy) {
  Distribution buffer(p.size());
  for (std::uint32_t s = 0; s < steps; ++s) {
    if (lazy) step_distribution_lazy(g, p, buffer);
    else step_distribution(g, p, buffer);
    p.swap(buffer);
  }
}

}  // namespace sntrust

#include "markov/frontier.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "markov/modulated.hpp"
#include "markov/transition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/env.hpp"

namespace sntrust {

namespace {

/// Candidate rows per worker chunk for the sparse pull: each row is a short
/// gather, so small frontiers stay inline.
constexpr std::size_t kSparseGrain = 1024;

/// Runtime override of the process-wide kernel mode; -1 = none.
std::atomic<int> g_kernel_override{-1};

int env_kernel_mode() {
  static const int mode = [] {
    const std::optional<KernelMode> parsed =
        parse_kernel_mode(env_string("SNTRUST_KERNEL", "auto"));
    return static_cast<int>(parsed.value_or(KernelMode::kAuto));
  }();
  return mode;
}

}  // namespace

std::string to_string(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto: return "auto";
    case KernelMode::kDense: return "dense";
    case KernelMode::kSparse: return "sparse";
  }
  return "?";
}

std::optional<KernelMode> parse_kernel_mode(const std::string& text) {
  std::string value{text};
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (value == "auto") return KernelMode::kAuto;
  if (value == "dense") return KernelMode::kDense;
  if (value == "sparse") return KernelMode::kSparse;
  return std::nullopt;
}

KernelMode kernel_mode() {
  const int override_mode =
      g_kernel_override.load(std::memory_order_relaxed);
  if (override_mode >= 0) return static_cast<KernelMode>(override_mode);
  return static_cast<KernelMode>(env_kernel_mode());
}

void set_kernel_mode(KernelMode mode) {
  g_kernel_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void clear_kernel_mode_override() {
  g_kernel_override.store(-1, std::memory_order_relaxed);
}

ScopedKernelMode::ScopedKernelMode(KernelMode mode)
    : previous_(g_kernel_override.load(std::memory_order_relaxed)) {
  set_kernel_mode(mode);
}

ScopedKernelMode::~ScopedKernelMode() {
  g_kernel_override.store(previous_, std::memory_order_relaxed);
}

double kernel_dense_fraction() {
  static const double fraction =
      std::max(0.0, env_double("SNTRUST_KERNEL_THRESHOLD", 0.5));
  return fraction;
}

StationaryPrefix::StationaryPrefix(const Distribution& pi)
    : prefix_(pi.size() + 1, 0.0) {
  for (std::size_t v = 0; v < pi.size(); ++v)
    prefix_[v + 1] = prefix_[v] + pi[v];
}

double support_tvd(const Distribution& p, const std::vector<VertexId>& support,
                   const Distribution& pi, const StationaryPrefix& prefix) {
  if (p.size() != pi.size() || prefix.size() != pi.size())
    throw std::invalid_argument("support_tvd: size mismatch");
  double diff = 0.0;  // sum over support of |p - pi|
  double tail = 0.0;  // stationary mass outside the support, gap by gap
  VertexId cursor = 0;
  for (const VertexId v : support) {
    tail += prefix.range_mass(cursor, v);
    diff += std::fabs(p[v] - pi[v]);
    cursor = v + 1;
  }
  tail += prefix.range_mass(cursor, static_cast<VertexId>(pi.size()));
  return 0.5 * (diff + tail);
}

FrontierWalk::FrontierWalk(const Graph& g)
    : FrontierWalk(
          g, Options{kernel_mode(), kernel_dense_fraction(), graph_layout()}) {}

FrontierWalk::FrontierWalk(const Graph& g, const Options& options)
    : graph_(g),
      mode_(options.mode),
      dense_fraction_(options.dense_fraction),
      p_(g.num_vertices(), 0.0),
      buffer_(g.num_vertices(), 0.0),
      seen_(g.num_vertices(), 0),
      sparse_steps_(obs::metrics_counter("kernel.sparse_steps")),
      dense_steps_(obs::metrics_counter("kernel.dense_steps")),
      frontier_edges_(obs::metrics_counter("kernel.frontier_edges")),
      step_latency_(obs::metrics_quantile("kernel.step_ms")) {
  if (options.layout != GraphLayout::kPlain)
    matvec_.emplace(g, g.layout(options.layout));
}

void FrontierWalk::reset(VertexId source) {
  const VertexId n = graph_.num_vertices();
  if (source >= n)
    throw std::out_of_range("FrontierWalk::reset: source out of range");
  if (saturated_) {
    std::fill(p_.begin(), p_.end(), 0.0);
  } else {
    for (const VertexId v : support_) p_[v] = 0.0;
  }
  p_[source] = 1.0;
  support_.assign(1, source);
  saturated_ = n == 1;
  last_step_dense_ = false;
  last_frontier_degree_ = 0;
}

void FrontierWalk::build_candidates(bool include_support) {
  candidates_.clear();
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: clear markers and restart epochs
    std::fill(seen_.begin(), seen_.end(), 0);
    epoch_ = 1;
  }
  const auto& offsets = graph_.offsets();
  const auto& targets = graph_.targets();
  if (include_support) {
    for (const VertexId v : support_) {
      seen_[v] = epoch_;
      candidates_.push_back(v);
    }
  }
  for (const VertexId v : support_) {
    for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId w = targets[i];
      if (seen_[w] != epoch_) {
        seen_[w] = epoch_;
        candidates_.push_back(w);
      }
    }
  }
  // Large candidate sets are cheaper to re-collect in order by scanning the
  // epoch marks than to sort; both produce the same ascending list.
  const VertexId n = graph_.num_vertices();
  if (candidates_.size() >= n / 8) {
    candidates_.clear();
    for (VertexId v = 0; v < n; ++v)
      if (seen_[v] == epoch_) candidates_.push_back(v);
  } else {
    std::sort(candidates_.begin(), candidates_.end());
  }
  EdgeIndex degree = 0;
  for (const VertexId v : candidates_)
    degree += offsets[v + 1] - offsets[v];
  last_frontier_degree_ = degree;
}

void FrontierWalk::clear_buffer() {
  if (buffer_saturated_) {
    std::fill(buffer_.begin(), buffer_.end(), 0.0);
    buffer_saturated_ = false;
  } else {
    for (const VertexId v : buffer_support_) buffer_[v] = 0.0;
  }
}

void FrontierWalk::dense_step(StepKind kind, double alpha) {
  if (matvec_) {  // degree-ordered substrate; bitwise equal to the CSR path
    matvec_->step(kind, alpha, p_, buffer_);
    return;
  }
  switch (kind) {
    case StepKind::kPlain:
      step_distribution(graph_, p_, buffer_);
      break;
    case StepKind::kLazy:
      step_distribution_lazy(graph_, p_, buffer_);
      break;
    case StepKind::kModulated:
      step_modulated(graph_, p_, buffer_, alpha);
      break;
  }
}

void FrontierWalk::sparse_step(StepKind kind, double alpha) {
  const auto& offsets = graph_.offsets();
  const auto& targets = graph_.targets();
  const Distribution& p = p_;
  // Each candidate row accumulates exactly the nonzero terms of its full
  // CSR-order adjacency scan, in the same ascending order — the identical
  // summation the dense kernels perform for that row, so sparse and dense
  // results are bitwise equal. For rows much longer than the support, the
  // surviving terms are row ∩ support: walking the (ascending) support and
  // binary-searching each vertex in the sorted row enumerates the same
  // terms in the same order at O(|supp| log deg) instead of O(deg).
  const std::size_t support_size = support_.size();
  parallel::parallel_for(
      0, candidates_.size(),
      [&](std::size_t idx, std::uint32_t) {
        const VertexId v = candidates_[idx];
        const EdgeIndex row_begin = offsets[v];
        const EdgeIndex row_end = offsets[v + 1];
        double acc = 0.0;
        if (support_size * 4 < row_end - row_begin) {
          const VertexId* row = targets.data();
          EdgeIndex lo = row_begin;
          for (const VertexId w : support_) {
            if (p[w] == 0.0) continue;
            const VertexId* it =
                std::lower_bound(row + lo, row + row_end, w);
            lo = static_cast<EdgeIndex>(it - row);
            if (lo < row_end && row[lo] == w) {
              acc += p[w] / static_cast<double>(offsets[w + 1] - offsets[w]);
              ++lo;
            }
          }
        } else {
          for (EdgeIndex i = row_begin; i < row_end; ++i) {
            const VertexId w = targets[i];
            if (p[w] == 0.0) continue;
            acc += p[w] / static_cast<double>(offsets[w + 1] - offsets[w]);
          }
        }
        switch (kind) {
          case StepKind::kPlain:
            buffer_[v] = acc;
            break;
          case StepKind::kLazy:
            buffer_[v] = 0.5 * acc + 0.5 * p[v];
            break;
          case StepKind::kModulated:
            buffer_[v] = alpha * p[v] + (1.0 - alpha) * acc;
            break;
        }
      },
      kSparseGrain);
}

void FrontierWalk::step(StepKind kind, double alpha) {
  if (kind == StepKind::kModulated && (alpha < 0.0 || alpha >= 1.0))
    throw std::invalid_argument("FrontierWalk::step: alpha must be in [0,1)");

  const obs::Stopwatch step_clock;
  if (saturated_) {
    // Full support is a fixed point of the frontier expansion (every vertex
    // of a graph without isolated vertices has a neighbour in it), so the
    // walk stays dense; the bookkeeping is dropped entirely.
    dense_step(kind, alpha);
    std::swap(p_, buffer_);
    buffer_saturated_ = true;
    dense_steps_.add(1);
    last_step_dense_ = true;
    last_frontier_degree_ = 0;
    step_latency_.record(step_clock.elapsed_ms());
    return;
  }

  // Structural support evolution: the next support is exactly the candidate
  // row set, computed identically in every kernel mode so TVD grouping (and
  // thus every curve value) never depends on the mode.
  build_candidates(/*include_support=*/kind != StepKind::kPlain);

  bool dense = false;
  switch (mode_) {
    case KernelMode::kDense:
      dense = true;
      break;
    case KernelMode::kSparse:
      dense = false;
      break;
    case KernelMode::kAuto:
      dense = static_cast<double>(last_frontier_degree_) >=
              dense_fraction_ * static_cast<double>(graph_.targets().size());
      break;
  }

  if (dense) {
    dense_step(kind, alpha);  // overwrites every row; no pre-clear needed
    buffer_saturated_ = false;
  } else {
    clear_buffer();
    sparse_step(kind, alpha);
    frontier_edges_.add(last_frontier_degree_);
  }

  std::swap(p_, buffer_);
  std::swap(support_, buffer_support_);  // buffer keeps the old support
  std::swap(support_, candidates_);      // p takes the candidate rows
  if (support_.size() == graph_.num_vertices()) saturated_ = true;

  if (dense) dense_steps_.add(1);
  else sparse_steps_.add(1);
  last_step_dense_ = dense;
  step_latency_.record(step_clock.elapsed_ms());
}

double FrontierWalk::tvd(const Distribution& pi,
                         const StationaryPrefix& prefix) const {
  if (!saturated_) return support_tvd(p_, support_, pi, prefix);
  if (p_.size() != pi.size() || prefix.size() != pi.size())
    throw std::invalid_argument("FrontierWalk::tvd: size mismatch");
  // Full-support fast path: bitwise equal to support_tvd over all vertices
  // (every gap is empty, so the tail term is exactly +0.0).
  double diff = 0.0;
  for (std::size_t v = 0; v < p_.size(); ++v)
    diff += std::fabs(p_[v] - pi[v]);
  return 0.5 * diff;
}

}  // namespace sntrust

// Dense (cyclic Jacobi) eigendecomposition of the normalized adjacency
// operator for small graphs — the exact oracle behind the iterative
// machinery: tests cross-check power-iteration SLEM and Lanczos against it,
// and the full decomposition yields the *exact* walk distribution at any t
// (P^t via the spectral expansion), pinning the sampling-method TVD curves.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "markov/distribution.hpp"

namespace sntrust {

struct DenseSpectrum {
  /// Eigenvalues of N = D^{-1/2} A D^{-1/2}, descending.
  std::vector<double> eigenvalues;
  /// eigenvectors[k] = unit eigenvector of eigenvalues[k] (in N-space).
  std::vector<std::vector<double>> eigenvectors;
};

/// Full eigendecomposition by cyclic Jacobi rotations. O(n^3) per sweep —
/// intended for n <= 256 (throws std::invalid_argument beyond that).
/// Requires >= 1 edge.
DenseSpectrum dense_spectrum(const Graph& g, std::uint32_t max_sweeps = 64);

/// Exact t-step walk distribution from `source` computed through the
/// spectral expansion of P = D^{-1/2} N D^{1/2} (no repeated matvecs, exact
/// up to the decomposition's accuracy).
Distribution exact_walk_distribution(const Graph& g,
                                     const DenseSpectrum& spectrum,
                                     VertexId source, std::uint32_t steps);

/// Exact SLEM from the dense spectrum: max(|lambda_2|, |lambda_n|).
double exact_slem(const DenseSpectrum& spectrum);

}  // namespace sntrust

// Distribution matvec over a degree-ordered layout (graph/layout.hpp).
//
// The plain kernels in transition.cpp walk each row and compute
// `acc += p[w] / deg(w)` per edge: three random streams per target (the
// distribution entry plus two offset words for the degree) and one divide
// per edge. This engine restructures — never reassociates — that work:
//
//   1. permute the distribution into internal (degree-descending) id space
//      and pre-divide once per vertex: pscaled[w] = p[w] / deg(w). Each
//      quotient is the exact double the plain kernel computes per edge, now
//      computed n times instead of m.
//   2. gather rows in internal space: acc += pscaled[w]. One 8-byte stream,
//      and the hub prefix that absorbs most heavy-tailed edge endpoints is
//      cache-resident by construction.
//   3. blend with the same expressions as the plain kernels and permute the
//      result back to external ids.
//
// Bitwise identity with the plain kernels (the determinism contract of
// graph/layout.hpp): rows store targets in the plain CSR's order, each
// gathered term is the identical double, and zero entries contribute +0.0 —
// which cannot change a nonnegative accumulator. SIMD hints go only on the
// elementwise permute/scale passes; gathers stay in strict row order.
#pragma once

#include <memory>

#include "graph/graph.hpp"
#include "graph/layout.hpp"
#include "markov/distribution.hpp"
#include "markov/transition.hpp"

namespace sntrust {

/// Reusable matvec workspace bound to one graph + layout engine (three
/// n-sized scratch vectors). Not thread-safe; sweeps hold one per worker.
class LayoutMatvec {
 public:
  /// `data` must come from `g.layout(...)` (non-plain). Throws
  /// std::invalid_argument when it is null or sized for a different graph.
  LayoutMatvec(const Graph& g, std::shared_ptr<const LayoutData> data);

  /// One step of the chosen chain: reads `p`, writes `out` (resized), both
  /// in external id space. `out` must not alias `p`. Bitwise identical to
  /// step_distribution / step_distribution_lazy / step_modulated.
  void step(StepKind kind, double alpha, const Distribution& p,
            Distribution& out);

  const LayoutData& data() const noexcept { return *data_; }

 private:
  std::shared_ptr<const LayoutData> data_;
  Distribution p_int_;      // p permuted to internal ids
  Distribution pscaled_;    // p_int / degree, the gathered stream
  Distribution out_int_;    // result in internal ids
};

}  // namespace sntrust

#include "markov/spectral.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/components.hpp"
#include "obs/diag.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

/// y = N x where N = D^{-1/2} A D^{-1/2} (symmetric, same spectrum as P).
/// Row-partitioned gather over the pool: each output row sums its
/// neighbours' contributions in adjacency order, independent of chunking.
void apply_normalized_adjacency(const Graph& g,
                                const std::vector<double>& inv_sqrt_deg,
                                const std::vector<double>& x,
                                std::vector<double>& y) {
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  const VertexId n = g.num_vertices();
  y.resize(n);
  parallel::parallel_for(
      0, n,
      [&](std::size_t v, std::uint32_t) {
        double acc = 0.0;
        for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i)
          acc += x[targets[i]] * inv_sqrt_deg[targets[i]];
        y[v] = acc * inv_sqrt_deg[v];
      },
      /*grain=*/2048);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

SlemResult second_largest_eigenvalue(const Graph& g,
                                     const SlemOptions& options) {
  const obs::Span span{"slem.power_iteration", "markov"};
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument(
        "second_largest_eigenvalue: graph must have edges");
  if (!is_connected(g))
    throw std::invalid_argument(
        "second_largest_eigenvalue: graph must be connected");

  std::vector<double> inv_sqrt_deg(n);
  for (VertexId v = 0; v < n; ++v)
    inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.degree(v)));

  // Principal eigenvector of N (eigenvalue 1): phi_v = sqrt(deg v),
  // normalized.
  std::vector<double> phi(n);
  for (VertexId v = 0; v < n; ++v)
    phi[v] = std::sqrt(static_cast<double>(g.degree(v)));
  const double phi_norm = norm(phi);
  for (double& value : phi) value /= phi_norm;

  Rng rng{options.seed};
  std::vector<double> x(n);
  for (double& value : x) value = rng.uniform_real() - 0.5;

  const auto deflate = [&](std::vector<double>& vec) {
    const double projection = dot(vec, phi);
    for (VertexId v = 0; v < n; ++v) vec[v] -= projection * phi[v];
  };
  deflate(x);
  {
    const double x_norm = norm(x);
    if (x_norm == 0.0)
      throw std::logic_error("second_largest_eigenvalue: degenerate start");
    for (double& value : x) value /= x_norm;
  }

  SlemResult result;
  // Flush the iteration count into the metrics registry on every exit path.
  struct CountIterations {
    const std::uint32_t& iterations;
    ~CountIterations() {
      static obs::Counter& c = obs::metrics_counter("slem.iterations");
      c.add(iterations);
    }
  } count_iterations{result.iterations};
  // Diagnostics (SNTRUST_DIAG): residual trajectory |estimate - previous|
  // plus the estimate itself. Observes values the loop already computes —
  // the measurement is bitwise identical whether armed or not.
  const bool diag = obs::diag_enabled();
  obs::ConvergenceTrace residual_trace;
  struct RecordDiag {
    bool armed;
    const SlemResult& result;
    const obs::ConvergenceTrace& residuals;
    ~RecordDiag() {
      if (!armed) return;
      obs::DiagRegistry::instance().record_trace(obs::summarize_trace(
          "slem.power_iteration", 0, residuals, result.converged));
      obs::ConfidenceInterval mu;
      mu.mean = mu.lo = mu.hi = result.mu;
      mu.n = 1;
      mu.ess = 1.0;
      obs::DiagRegistry::instance().record_estimate("slem.mu", mu);
      obs::ConfidenceInterval gap = mu;
      gap.mean = gap.lo = gap.hi = 1.0 - result.mu;
      obs::DiagRegistry::instance().record_estimate("slem.spectral_gap", gap);
      if (!result.converged)
        obs::DiagRegistry::instance().record_nonconverged(
            "slem.power_iteration", 0, result.iterations, result.mu);
    }
  } record_diag{diag, result, residual_trace};
  std::vector<double> y;
  double previous = 0.0;
  for (std::uint32_t it = 1; it <= options.max_iterations; ++it) {
    apply_normalized_adjacency(g, inv_sqrt_deg, x, y);
    deflate(y);  // re-deflate every step to kill numeric drift toward phi
    const double y_norm = norm(y);
    result.iterations = it;
    if (y_norm == 0.0) {  // x was (numerically) orthogonal to all of spectrum
      result.mu = 0.0;
      result.converged = true;
      return result;
    }
    // Rayleigh-style estimate of |lambda|: ||N x|| for unit x bounds the
    // dominant remaining modulus; the iterate converges to it.
    const double estimate = y_norm;
    if (diag) residual_trace.add(std::fabs(estimate - previous));
    for (VertexId v = 0; v < n; ++v) x[v] = y[v] / y_norm;
    if (std::fabs(estimate - previous) < options.tolerance) {
      result.mu = estimate;
      result.converged = true;
      return result;
    }
    previous = estimate;
  }
  result.mu = previous;
  result.converged = false;
  return result;
}

MixingBounds sinclair_bounds(double mu, double epsilon, VertexId n) {
  if (!(mu > 0.0) || !(mu < 1.0))
    throw std::invalid_argument("sinclair_bounds: mu must be in (0,1)");
  if (!(epsilon > 0.0) || !(epsilon < 1.0))
    throw std::invalid_argument("sinclair_bounds: epsilon must be in (0,1)");
  if (n < 2) throw std::invalid_argument("sinclair_bounds: n must be >= 2");
  MixingBounds bounds;
  bounds.lower = mu / (1.0 - mu) * std::log(1.0 / (2.0 * epsilon));
  bounds.upper =
      (std::log(static_cast<double>(n)) + std::log(1.0 / epsilon)) /
      (1.0 - mu);
  return bounds;
}

}  // namespace sntrust

#include "markov/distribution.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sntrust {

Distribution dirac(VertexId n, VertexId vertex) {
  if (vertex >= n) throw std::out_of_range("dirac: vertex out of range");
  Distribution d(n, 0.0);
  d[vertex] = 1.0;
  return d;
}

Distribution stationary_distribution(const Graph& g) {
  const EdgeIndex m2 = g.targets().size();  // 2m
  if (m2 == 0)
    throw std::invalid_argument("stationary_distribution: graph has no edges");
  Distribution pi(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    pi[v] = static_cast<double>(g.degree(v)) / static_cast<double>(m2);
  return pi;
}

double total_variation(const Distribution& a, const Distribution& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("total_variation: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return 0.5 * sum;
}

double mass(const Distribution& d) {
  return std::accumulate(d.begin(), d.end(), 0.0);
}

}  // namespace sntrust

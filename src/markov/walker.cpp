#include "markov/walker.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/prp.hpp"

namespace sntrust {

RandomWalker::RandomWalker(const Graph& g, std::uint64_t seed)
    : graph_(g),
      rng_(seed),
      walk_steps_(&obs::metrics_counter("walk.steps")) {}

std::vector<VertexId> RandomWalker::walk(VertexId start, std::uint32_t length) {
  if (start >= graph_.num_vertices())
    throw std::out_of_range("RandomWalker::walk: start out of range");
  if (graph_.degree(start) == 0)
    throw std::invalid_argument("RandomWalker::walk: isolated start vertex");
  std::vector<VertexId> trail;
  trail.reserve(length + 1);
  trail.push_back(start);
  VertexId at = start;
  for (std::uint32_t s = 0; s < length; ++s) {
    const auto nbrs = graph_.neighbors_unchecked(at);
    at = nbrs[rng_.uniform(nbrs.size())];
    trail.push_back(at);
  }
  walk_steps_->add(length);
  return trail;
}

VertexId RandomWalker::walk_endpoint(VertexId start, std::uint32_t length) {
  if (start >= graph_.num_vertices())
    throw std::out_of_range("RandomWalker::walk_endpoint: start out of range");
  if (graph_.degree(start) == 0)
    throw std::invalid_argument(
        "RandomWalker::walk_endpoint: isolated start vertex");
  VertexId at = start;
  for (std::uint32_t s = 0; s < length; ++s) {
    const auto nbrs = graph_.neighbors_unchecked(at);
    at = nbrs[rng_.uniform(nbrs.size())];
  }
  walk_steps_->add(length);
  return at;
}

RouteTables::RouteTables(const Graph& g, std::uint64_t seed) : graph_(g) {
  Rng rng{seed};
  const VertexId n = g.num_vertices();
  perm_offset_.resize(n + 1);
  perm_offset_[0] = 0;
  for (VertexId v = 0; v < n; ++v)
    perm_offset_[v + 1] = perm_offset_[v] + g.degree(v);
  perm_.resize(perm_offset_[n]);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t base = perm_offset_[v];
    const std::uint32_t deg = g.degree(v);
    for (std::uint32_t i = 0; i < deg; ++i) perm_[base + i] = i;
    rng.shuffle(std::span<std::uint32_t>{perm_.data() + base, deg});
  }
}

std::uint32_t RouteTables::slot_at_target(VertexId u, VertexId w) const {
  const auto nbrs = graph_.neighbors_unchecked(w);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  if (it == nbrs.end() || *it != u)
    throw std::logic_error("RouteTables: edge not found in reverse adjacency");
  return static_cast<std::uint32_t>(it - nbrs.begin());
}

std::vector<VertexId> RouteTables::route(VertexId start,
                                         std::uint32_t first_slot,
                                         std::uint32_t length) const {
  if (start >= graph_.num_vertices())
    throw std::out_of_range("RouteTables::route: start out of range");
  const std::uint32_t deg0 = graph_.degree(start);
  if (deg0 == 0)
    throw std::invalid_argument("RouteTables::route: isolated start vertex");
  if (first_slot >= deg0)
    throw std::out_of_range("RouteTables::route: first_slot out of range");

  std::vector<VertexId> trail;
  trail.reserve(length + 1);
  trail.push_back(start);
  VertexId at = start;
  std::uint32_t slot = first_slot;
  for (std::uint32_t s = 0; s < length; ++s) {
    const VertexId next = graph_.neighbors_unchecked(at)[slot];
    const std::uint32_t in_slot = slot_at_target(at, next);
    trail.push_back(next);
    slot = out_slot(next, in_slot);
    at = next;
  }
  return trail;
}

std::pair<VertexId, VertexId> RouteTables::route_tail(
    VertexId start, std::uint32_t first_slot, std::uint32_t length) const {
  if (length == 0)
    throw std::invalid_argument("RouteTables::route_tail: length must be > 0");
  const std::vector<VertexId> trail = route(start, first_slot, length);
  return {trail[trail.size() - 2], trail.back()};
}

std::uint32_t HashedRoutes::out_slot(VertexId v, std::uint32_t in_slot,
                                     std::uint32_t instance) const {
  const std::uint64_t key =
      seed_ ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(v) + 1)) ^
      (0xc2b2ae3d27d4eb4fULL * (static_cast<std::uint64_t>(instance) + 1));
  return KeyedPermutation{graph_.degree_unchecked(v), key}.apply(in_slot);
}

std::vector<VertexId> HashedRoutes::route(VertexId start,
                                          std::uint32_t first_slot,
                                          std::uint32_t length,
                                          std::uint32_t instance) const {
  if (start >= graph_.num_vertices())
    throw std::out_of_range("HashedRoutes::route: start out of range");
  const std::uint32_t deg0 = graph_.degree(start);
  if (deg0 == 0)
    throw std::invalid_argument("HashedRoutes::route: isolated start vertex");
  if (first_slot >= deg0)
    throw std::out_of_range("HashedRoutes::route: first_slot out of range");

  std::vector<VertexId> trail;
  trail.reserve(length + 1);
  trail.push_back(start);
  VertexId at = start;
  std::uint32_t slot = first_slot;
  for (std::uint32_t s = 0; s < length; ++s) {
    const VertexId next = graph_.neighbors_unchecked(at)[slot];
    // Incident slot of the edge (at -> next) on the `next` side.
    const auto nbrs = graph_.neighbors_unchecked(next);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), at);
    const auto in_slot = static_cast<std::uint32_t>(it - nbrs.begin());
    trail.push_back(next);
    slot = out_slot(next, in_slot, instance);
    at = next;
  }
  return trail;
}

std::pair<VertexId, VertexId> HashedRoutes::route_tail(
    VertexId start, std::uint32_t first_slot, std::uint32_t length,
    std::uint32_t instance) const {
  if (length == 0)
    throw std::invalid_argument("HashedRoutes::route_tail: length must be > 0");
  const std::vector<VertexId> trail = route(start, first_slot, length, instance);
  return {trail[trail.size() - 2], trail.back()};
}

}  // namespace sntrust

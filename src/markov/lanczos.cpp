#include "markov/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/components.hpp"
#include "obs/diag.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

void apply_normalized(const Graph& g, const std::vector<double>& inv_sqrt_deg,
                      const std::vector<double>& x, std::vector<double>& y) {
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  const VertexId n = g.num_vertices();
  y.assign(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const double xv = x[v] * inv_sqrt_deg[v];
    if (xv == 0.0) continue;
    for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e)
      y[targets[e]] += xv * inv_sqrt_deg[targets[e]];
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Eigenvalues of a symmetric tridiagonal matrix via QL-free bisection on
/// Sturm sequences — robust and dependency-free for the small sizes here.
std::vector<double> tridiagonal_eigenvalues(const std::vector<double>& diag,
                                            const std::vector<double>& off) {
  const std::size_t n = diag.size();
  // Gershgorin bounds.
  double lo = diag[0], hi = diag[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double left = i > 0 ? std::fabs(off[i - 1]) : 0.0;
    const double right = i + 1 < n ? std::fabs(off[i]) : 0.0;
    lo = std::min(lo, diag[i] - left - right);
    hi = std::max(hi, diag[i] + left + right);
  }
  // Sturm count: number of eigenvalues < x.
  const auto count_below = [&](double x) {
    std::size_t count = 0;
    double q = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double off_sq = i > 0 ? off[i - 1] * off[i - 1] : 0.0;
      q = diag[i] - x - (q != 0.0 ? off_sq / q : off_sq / 1e-300);
      if (q < 0.0) ++count;
    }
    return count;
  };
  std::vector<double> values(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k-th smallest eigenvalue by bisection.
    double a = lo, b = hi;
    for (int iter = 0; iter < 200 && b - a > 1e-13 * std::max(1.0, std::fabs(b));
         ++iter) {
      const double mid = 0.5 * (a + b);
      if (count_below(mid) > k) b = mid;
      else a = mid;
    }
    values[k] = 0.5 * (a + b);
  }
  return values;  // ascending
}

}  // namespace

LanczosResult lanczos_spectrum(const Graph& g, const LanczosOptions& options) {
  const obs::Span span{"lanczos", "markov"};
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument("lanczos_spectrum: graph must have edges");
  if (!is_connected(g))
    throw std::invalid_argument("lanczos_spectrum: graph must be connected");
  if (options.num_eigenvalues == 0)
    throw std::invalid_argument("lanczos_spectrum: need >= 1 eigenvalue");

  std::uint32_t m = options.subspace;
  if (m == 0) m = std::min<std::uint32_t>(n, 4 * options.num_eigenvalues + 32);
  m = std::min<std::uint32_t>(m, n);

  std::vector<double> inv_sqrt_deg(n);
  for (VertexId v = 0; v < n; ++v)
    inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.degree(v)));

  Rng rng{options.seed};
  std::vector<std::vector<double>> basis;
  basis.reserve(m);
  std::vector<double> diag, off;

  std::vector<double> q(n);
  for (double& value : q) value = rng.uniform_real() - 0.5;
  {
    const double norm = std::sqrt(dot(q, q));
    for (double& value : q) value /= norm;
  }

  std::vector<double> w(n);
  LanczosResult result;
  for (std::uint32_t j = 0; j < m; ++j) {
    basis.push_back(q);
    apply_normalized(g, inv_sqrt_deg, q, w);
    const double alpha = dot(w, q);
    diag.push_back(alpha);
    // w -= alpha q + beta q_{j-1}; then full reorthogonalization.
    for (VertexId v = 0; v < n; ++v) w[v] -= alpha * q[v];
    if (j > 0) {
      const double beta_prev = off.back();
      const auto& prev = basis[j - 1];
      for (VertexId v = 0; v < n; ++v) w[v] -= beta_prev * prev[v];
    }
    for (const auto& b : basis) {
      const double projection = dot(w, b);
      for (VertexId v = 0; v < n; ++v) w[v] -= projection * b[v];
    }
    const double beta = std::sqrt(dot(w, w));
    result.iterations = j + 1;
    if (beta < 1e-12 || j + 1 == m) break;
    off.push_back(beta);
    for (VertexId v = 0; v < n; ++v) q[v] = w[v] / beta;
  }

  obs::count("lanczos.iterations", result.iterations);

  // Diagnostics (SNTRUST_DIAG): the off-diagonal beta trajectory is the
  // Lanczos residual analogue — beta_j -> 0 means the Krylov space closed.
  // Exiting on the subspace cap is the normal operating mode (the subspace
  // is sized for the requested eigenvalue count), so a Lanczos run is never
  // flagged as non-converged.
  if (obs::diag_enabled() && !off.empty()) {
    obs::ConvergenceTrace betas;
    for (const double beta : off) betas.add(beta);
    obs::DiagRegistry::instance().record_trace(
        obs::summarize_trace("slem.lanczos", 0, betas, /*converged=*/true));
  }

  std::vector<double> values = tridiagonal_eigenvalues(diag, off);
  std::reverse(values.begin(), values.end());  // descending
  if (values.size() > options.num_eigenvalues)
    values.resize(options.num_eigenvalues);
  result.eigenvalues = std::move(values);
  return result;
}

}  // namespace sntrust

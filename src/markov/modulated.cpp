#include "markov/modulated.hpp"

#include <stdexcept>

#include "graph/components.hpp"
#include "markov/transition.hpp"
#include "util/rng.hpp"

namespace sntrust {

void step_modulated(const Graph& g, const Distribution& p, Distribution& out,
                    double alpha) {
  if (alpha < 0.0 || alpha >= 1.0)
    throw std::invalid_argument("step_modulated: alpha must be in [0,1)");
  step_distribution(g, p, out);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    out[v] = alpha * p[v] + (1.0 - alpha) * out[v];
}

void step_originator_biased(const Graph& g, const Distribution& p,
                            Distribution& out, double alpha,
                            VertexId originator) {
  if (alpha < 0.0 || alpha >= 1.0)
    throw std::invalid_argument(
        "step_originator_biased: alpha must be in [0,1)");
  if (originator >= g.num_vertices())
    throw std::out_of_range("step_originator_biased: originator out of range");
  step_distribution(g, p, out);
  for (VertexId v = 0; v < g.num_vertices(); ++v) out[v] *= 1.0 - alpha;
  out[originator] += alpha;
}

Distribution originator_stationary(const Graph& g, VertexId originator,
                                   double alpha, double tolerance,
                                   std::uint32_t max_iterations) {
  if (!(alpha > 0.0) || alpha >= 1.0)
    throw std::invalid_argument(
        "originator_stationary: alpha must be in (0,1)");
  if (originator >= g.num_vertices())
    throw std::out_of_range("originator_stationary: originator out of range");
  Distribution p = dirac(g.num_vertices(), originator);
  Distribution next(p.size());
  for (std::uint32_t it = 0; it < max_iterations; ++it) {
    step_originator_biased(g, p, next, alpha, originator);
    const double distance = total_variation(p, next);
    p.swap(next);
    if (distance <= tolerance) break;
  }
  return p;
}

std::uint32_t modulated_mixing_time(const Graph& g, double alpha,
                                    double epsilon,
                                    std::uint32_t num_sources,
                                    std::uint32_t max_walk_length,
                                    std::uint64_t seed) {
  if (g.num_vertices() == 0 || g.num_edges() == 0)
    throw std::invalid_argument("modulated_mixing_time: graph must have edges");
  if (!is_connected(g))
    throw std::invalid_argument("modulated_mixing_time: graph must be connected");
  if (num_sources == 0)
    throw std::invalid_argument("modulated_mixing_time: need sources");

  Rng rng{seed};
  const std::uint32_t k =
      std::min<std::uint32_t>(num_sources, g.num_vertices());
  const std::vector<VertexId> sources =
      rng.sample_without_replacement(g.num_vertices(), k);
  const Distribution pi = stationary_distribution(g);

  // Evolve all sources in lockstep and report the first t where the worst
  // source is within epsilon.
  std::vector<Distribution> states;
  states.reserve(k);
  for (const VertexId s : sources) states.push_back(dirac(g.num_vertices(), s));
  Distribution buffer(g.num_vertices());

  const auto worst = [&]() {
    double value = 0.0;
    for (const Distribution& p : states)
      value = std::max(value, total_variation(p, pi));
    return value;
  };
  if (worst() <= epsilon) return 0;
  for (std::uint32_t t = 1; t <= max_walk_length; ++t) {
    for (Distribution& p : states) {
      step_modulated(g, p, buffer, alpha);
      p.swap(buffer);
    }
    if (worst() <= epsilon) return t;
  }
  return 0xFFFFFFFFu;
}

}  // namespace sntrust

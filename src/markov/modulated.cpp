#include "markov/modulated.hpp"

#include <stdexcept>

#include "graph/components.hpp"
#include "markov/frontier.hpp"
#include "markov/transition.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

/// Rows per worker chunk, matching the transition.cpp matvecs.
constexpr std::size_t kMatvecGrain = 2048;

/// One parallel gather pass with the write expression fused in, so the
/// trust-modulated steps no longer pay a second serial O(n) blend pass.
template <typename Write>
void gather_rows(const Graph& g, const Distribution& p, Distribution& out,
                 const Write& write) {
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  parallel::parallel_for(
      0, g.num_vertices(),
      [&](std::size_t v, std::uint32_t) {
        double acc = 0.0;
        for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i) {
          const VertexId w = targets[i];
          if (p[w] == 0.0) continue;
          acc += p[w] / static_cast<double>(offsets[w + 1] - offsets[w]);
        }
        out[v] = write(v, acc);
      },
      kMatvecGrain);
}

void check_step_args(const Graph& g, const Distribution& p,
                     const Distribution& out, const char* who) {
  if (p.size() != g.num_vertices())
    throw std::invalid_argument(std::string{who} + ": size mismatch");
  if (&p == &out)
    throw std::invalid_argument(std::string{who} + ": out must not alias p");
}

}  // namespace

void step_modulated(const Graph& g, const Distribution& p, Distribution& out,
                    double alpha) {
  if (alpha < 0.0 || alpha >= 1.0)
    throw std::invalid_argument("step_modulated: alpha must be in [0,1)");
  check_step_args(g, p, out, "step_modulated");
  out.resize(g.num_vertices());
  gather_rows(g, p, out, [&](std::size_t v, double acc) {
    return alpha * p[v] + (1.0 - alpha) * acc;
  });
}

void step_originator_biased(const Graph& g, const Distribution& p,
                            Distribution& out, double alpha,
                            VertexId originator) {
  if (alpha < 0.0 || alpha >= 1.0)
    throw std::invalid_argument(
        "step_originator_biased: alpha must be in [0,1)");
  if (originator >= g.num_vertices())
    throw std::out_of_range("step_originator_biased: originator out of range");
  check_step_args(g, p, out, "step_originator_biased");
  out.resize(g.num_vertices());
  gather_rows(g, p, out,
              [&](std::size_t, double acc) { return acc * (1.0 - alpha); });
  out[originator] += alpha;
}

Distribution originator_stationary(const Graph& g, VertexId originator,
                                   double alpha, double tolerance,
                                   std::uint32_t max_iterations) {
  if (!(alpha > 0.0) || alpha >= 1.0)
    throw std::invalid_argument(
        "originator_stationary: alpha must be in (0,1)");
  if (originator >= g.num_vertices())
    throw std::out_of_range("originator_stationary: originator out of range");
  Distribution p = dirac(g.num_vertices(), originator);
  Distribution next(p.size());
  for (std::uint32_t it = 0; it < max_iterations; ++it) {
    step_originator_biased(g, p, next, alpha, originator);
    const double distance = total_variation(p, next);
    p.swap(next);
    if (distance <= tolerance) break;
  }
  return p;
}

std::uint32_t modulated_mixing_time(const Graph& g, double alpha,
                                    double epsilon,
                                    std::uint32_t num_sources,
                                    std::uint32_t max_walk_length,
                                    std::uint64_t seed) {
  if (g.num_vertices() == 0 || g.num_edges() == 0)
    throw std::invalid_argument("modulated_mixing_time: graph must have edges");
  if (!is_connected(g))
    throw std::invalid_argument("modulated_mixing_time: graph must be connected");
  if (num_sources == 0)
    throw std::invalid_argument("modulated_mixing_time: need sources");

  Rng rng{seed};
  const std::uint32_t k =
      std::min<std::uint32_t>(num_sources, g.num_vertices());
  const std::vector<VertexId> sources =
      rng.sample_without_replacement(g.num_vertices(), k);
  const Distribution pi = stationary_distribution(g);
  const StationaryPrefix prefix{pi};

  // Evolve all sources in lockstep on frontier walks (the modulated chain
  // retains mass in place, so the support grows like the lazy chain) and
  // report the first t where the worst source is within epsilon.
  std::vector<FrontierWalk> walks;
  walks.reserve(k);
  for (const VertexId s : sources) {
    walks.emplace_back(g);
    walks.back().reset(s);
  }

  const auto worst = [&]() {
    double value = 0.0;
    for (const FrontierWalk& walk : walks)
      value = std::max(value, walk.tvd(pi, prefix));
    return value;
  };
  if (worst() <= epsilon) return 0;
  for (std::uint32_t t = 1; t <= max_walk_length; ++t) {
    for (FrontierWalk& walk : walks) walk.step(StepKind::kModulated, alpha);
    if (worst() <= epsilon) return t;
  }
  return 0xFFFFFFFFu;
}

}  // namespace sntrust

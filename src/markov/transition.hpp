// The random-walk transition operator P (Eq. 1) applied to distribution
// vectors, without ever materializing the n x n matrix.
#pragma once

#include "graph/graph.hpp"
#include "markov/distribution.hpp"

namespace sntrust {

/// The chain variant a step applies; the write expressions mirror the dense
/// kernels in transition.cpp / modulated.cpp verbatim. (Consumed by the
/// frontier-sparse kernels and the layout matvec engine alike.)
enum class StepKind {
  kPlain,      ///< out_v = (pP)_v
  kLazy,       ///< out_v = 0.5 (pP)_v + 0.5 p_v
  kModulated,  ///< out_v = alpha p_v + (1 - alpha) (pP)_v
};

/// Applies one step of the simple random walk: out_w = sum_{v ~ w} p_v/deg(v).
/// `out` is resized and overwritten; `out` must not alias `p`.
void step_distribution(const Graph& g, const Distribution& p,
                       Distribution& out);

/// Lazy-walk step: out = 1/2 p + 1/2 pP. The lazy chain is aperiodic on any
/// connected graph, which the spectral machinery relies on for bipartite-ish
/// inputs.
void step_distribution_lazy(const Graph& g, const Distribution& p,
                            Distribution& out);

/// Evolves `p` for `steps` simple-walk steps in place (double buffering).
void evolve(const Graph& g, Distribution& p, std::uint32_t steps,
            bool lazy = false);

}  // namespace sntrust

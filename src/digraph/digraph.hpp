// Directed-graph substrate — the authors' immediate follow-up work ("On the
// Mixing Time of Directed Social Graphs") treats the directedness the main
// paper's Eq. (1) discards. Many Table-I datasets (Wiki-vote, Slashdot,
// Epinion) are natively directed; this module measures mixing on the
// directed walk, whose stationary distribution is no longer the degree
// distribution and may not even exist without a teleport correction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// Immutable CSR directed graph (out-adjacency plus a mirrored in-adjacency
/// for reverse traversals). Parallel arcs collapse; self loops are dropped.
class Digraph {
 public:
  Digraph() = default;

  /// Builds from an arc list over a fixed vertex universe.
  /// Throws std::out_of_range for endpoints >= num_vertices.
  Digraph(VertexId num_vertices, const std::vector<Edge>& arcs);

  VertexId num_vertices() const noexcept {
    return out_offsets_.empty()
               ? 0
               : static_cast<VertexId>(out_offsets_.size() - 1);
  }
  EdgeIndex num_arcs() const noexcept { return out_targets_.size(); }

  VertexId out_degree(VertexId v) const;
  VertexId in_degree(VertexId v) const;
  std::span<const VertexId> successors(VertexId v) const;
  std::span<const VertexId> predecessors(VertexId v) const;

  /// The underlying undirected graph (each arc as an edge).
  Graph undirected() const;

 private:
  void check_vertex(VertexId v) const;

  std::vector<EdgeIndex> out_offsets_{0};
  std::vector<VertexId> out_targets_;
  std::vector<EdgeIndex> in_offsets_{0};
  std::vector<VertexId> in_targets_;
};

/// Directs every edge of an undirected graph: with probability
/// `reciprocal_p` both arcs are kept (a mutual tie), otherwise a uniformly
/// random single direction. This is how the directed analogues of the
/// natively-directed Table-I datasets are produced from the registry's
/// undirected generators.
Digraph orient_graph(const Graph& g, double reciprocal_p, std::uint64_t seed);

/// One step of the teleporting directed walk ("PageRank chain"):
///   out = (1 - teleport) * p * P_out + mass-corrections,
/// where dangling (out-degree-0) mass and the teleport fraction are spread
/// uniformly. teleport = 0 is the raw directed walk (may not converge).
void step_directed(const Digraph& g, const std::vector<double>& p,
                   std::vector<double>& out, double teleport);

/// Stationary distribution of the teleporting chain by power iteration.
/// Preconditions: teleport in (0, 1), graph non-empty.
std::vector<double> directed_stationary(const Digraph& g, double teleport,
                                        double tolerance = 1e-12,
                                        std::uint32_t max_iterations = 10000);

/// Sampling-method mixing measurement on the directed chain: TVD between
/// the evolved distribution and the teleporting chain's stationary
/// distribution, worst case over sampled sources, per step.
struct DirectedMixingCurves {
  std::vector<VertexId> sources;
  std::vector<std::vector<double>> tvd;
};
DirectedMixingCurves measure_directed_mixing(const Digraph& g,
                                             double teleport,
                                             std::uint32_t num_sources,
                                             std::uint32_t max_walk_length,
                                             std::uint64_t seed);

}  // namespace sntrust

#include "digraph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

/// Builds one CSR side (offsets/targets) from (source, target) pairs,
/// deduplicating and dropping self loops.
void build_side(VertexId n, std::vector<std::pair<VertexId, VertexId>> pairs,
                std::vector<EdgeIndex>& offsets,
                std::vector<VertexId>& targets) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [s, t] : pairs) ++offsets[s + 1];
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  targets.resize(pairs.size());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [s, t] : pairs) targets[cursor[s]++] = t;
}

}  // namespace

Digraph::Digraph(VertexId num_vertices, const std::vector<Edge>& arcs) {
  std::vector<std::pair<VertexId, VertexId>> forward, backward;
  forward.reserve(arcs.size());
  backward.reserve(arcs.size());
  for (const Edge& a : arcs) {
    if (a.u >= num_vertices || a.v >= num_vertices)
      throw std::out_of_range("Digraph: arc endpoint out of range");
    if (a.u == a.v) continue;
    forward.push_back({a.u, a.v});
    backward.push_back({a.v, a.u});
  }
  build_side(num_vertices, std::move(forward), out_offsets_, out_targets_);
  build_side(num_vertices, std::move(backward), in_offsets_, in_targets_);
}

void Digraph::check_vertex(VertexId v) const {
  if (v >= num_vertices())
    throw std::out_of_range("Digraph: vertex out of range");
}

VertexId Digraph::out_degree(VertexId v) const {
  check_vertex(v);
  return static_cast<VertexId>(out_offsets_[v + 1] - out_offsets_[v]);
}

VertexId Digraph::in_degree(VertexId v) const {
  check_vertex(v);
  return static_cast<VertexId>(in_offsets_[v + 1] - in_offsets_[v]);
}

std::span<const VertexId> Digraph::successors(VertexId v) const {
  check_vertex(v);
  return {out_targets_.data() + out_offsets_[v],
          out_targets_.data() + out_offsets_[v + 1]};
}

std::span<const VertexId> Digraph::predecessors(VertexId v) const {
  check_vertex(v);
  return {in_targets_.data() + in_offsets_[v],
          in_targets_.data() + in_offsets_[v + 1]};
}

Graph Digraph::undirected() const {
  GraphBuilder builder{num_vertices()};
  builder.reserve(num_arcs());
  for (VertexId v = 0; v < num_vertices(); ++v)
    for (const VertexId w : successors(v)) builder.add_edge(v, w);
  return builder.build();
}

Digraph orient_graph(const Graph& g, double reciprocal_p,
                     std::uint64_t seed) {
  if (reciprocal_p < 0.0 || reciprocal_p > 1.0)
    throw std::invalid_argument("orient_graph: reciprocal_p must be in [0,1]");
  Rng rng{seed};
  std::vector<Edge> arcs;
  arcs.reserve(g.num_edges() * 2);
  for (const Edge& e : g.edges()) {
    if (rng.bernoulli(reciprocal_p)) {
      arcs.push_back({e.u, e.v});
      arcs.push_back({e.v, e.u});
    } else if (rng.bernoulli(0.5)) {
      arcs.push_back({e.u, e.v});
    } else {
      arcs.push_back({e.v, e.u});
    }
  }
  return Digraph{g.num_vertices(), arcs};
}

void step_directed(const Digraph& g, const std::vector<double>& p,
                   std::vector<double>& out, double teleport) {
  const VertexId n = g.num_vertices();
  if (p.size() != n)
    throw std::invalid_argument("step_directed: size mismatch");
  if (teleport < 0.0 || teleport >= 1.0)
    throw std::invalid_argument("step_directed: teleport must be in [0,1)");
  out.assign(n, 0.0);
  double dangling_mass = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    if (p[v] == 0.0) continue;
    const auto succ = g.successors(v);
    if (succ.empty()) {
      dangling_mass += p[v];
      continue;
    }
    const double share = (1.0 - teleport) * p[v] / succ.size();
    for (const VertexId w : succ) out[w] += share;
  }
  // Teleport fraction of routed mass + all dangling mass spread uniformly.
  double routed = 0.0;
  for (VertexId v = 0; v < n; ++v)
    if (!g.successors(v).empty()) routed += p[v];
  const double uniform =
      (teleport * routed + dangling_mass) / static_cast<double>(n);
  for (VertexId v = 0; v < n; ++v) out[v] += uniform;
}

std::vector<double> directed_stationary(const Digraph& g, double teleport,
                                        double tolerance,
                                        std::uint32_t max_iterations) {
  const VertexId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("directed_stationary: empty graph");
  if (!(teleport > 0.0) || teleport >= 1.0)
    throw std::invalid_argument(
        "directed_stationary: teleport must be in (0,1)");
  std::vector<double> p(n, 1.0 / n), next(n);
  for (std::uint32_t it = 0; it < max_iterations; ++it) {
    step_directed(g, p, next, teleport);
    double distance = 0.0;
    for (VertexId v = 0; v < n; ++v) distance += std::abs(next[v] - p[v]);
    p.swap(next);
    if (0.5 * distance <= tolerance) break;
  }
  return p;
}

DirectedMixingCurves measure_directed_mixing(const Digraph& g,
                                             double teleport,
                                             std::uint32_t num_sources,
                                             std::uint32_t max_walk_length,
                                             std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  if (n == 0 || num_sources == 0)
    throw std::invalid_argument(
        "measure_directed_mixing: need vertices and sources");
  Rng rng{seed};
  DirectedMixingCurves out;
  out.sources = rng.sample_without_replacement(
      n, std::min<std::uint32_t>(num_sources, n));
  const std::vector<double> pi = directed_stationary(g, teleport);

  std::vector<double> p(n), buffer(n);
  const auto tvd = [&](const std::vector<double>& a) {
    double sum = 0.0;
    for (VertexId v = 0; v < n; ++v) sum += std::abs(a[v] - pi[v]);
    return 0.5 * sum;
  };
  for (const VertexId source : out.sources) {
    std::fill(p.begin(), p.end(), 0.0);
    p[source] = 1.0;
    std::vector<double> curve;
    curve.reserve(max_walk_length + 1);
    curve.push_back(tvd(p));
    for (std::uint32_t t = 1; t <= max_walk_length; ++t) {
      step_directed(g, p, buffer, teleport);
      p.swap(buffer);
      curve.push_back(tvd(p));
    }
    out.tvd.push_back(std::move(curve));
  }
  return out;
}

}  // namespace sntrust

#include "dynamic/evolution.hpp"

#include <algorithm>
#include <stdexcept>

#include "cores/core_profile.hpp"
#include "expansion/expansion_profile.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "markov/spectral.hpp"
#include "util/rng.hpp"

namespace sntrust {

GrowthTrace::GrowthTrace(VertexId final_vertices, std::vector<Edge> edges)
    : final_vertices_(final_vertices), edges_(std::move(edges)) {
  for (const Edge& e : edges_)
    if (e.u >= final_vertices_ || e.v >= final_vertices_)
      throw std::invalid_argument("GrowthTrace: edge endpoint out of range");
}

Graph GrowthTrace::snapshot(VertexId num_vertices) const {
  if (num_vertices > final_vertices_)
    throw std::invalid_argument("GrowthTrace::snapshot: size beyond trace");
  GraphBuilder builder{num_vertices};
  for (const Edge& e : edges_)
    if (e.u < num_vertices && e.v < num_vertices) builder.add_edge(e.u, e.v);
  return builder.build();
}

GrowthTrace preferential_attachment_trace(VertexId final_vertices,
                                          VertexId edges_per_node,
                                          std::uint64_t seed) {
  if (edges_per_node < 1 || final_vertices <= edges_per_node)
    throw std::invalid_argument(
        "preferential_attachment_trace: need final_vertices > edges_per_node >= 1");
  Rng rng{seed};
  std::vector<Edge> edges;
  std::vector<VertexId> endpoints;
  const VertexId seed_size = edges_per_node + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<VertexId> picks(edges_per_node);
  for (VertexId v = seed_size; v < final_vertices; ++v) {
    std::size_t got = 0;
    while (got < edges_per_node) {
      const VertexId target = endpoints[rng.uniform(endpoints.size())];
      bool duplicate = false;
      for (std::size_t i = 0; i < got; ++i)
        if (picks[i] == target) { duplicate = true; break; }
      if (!duplicate) picks[got++] = target;
    }
    for (std::size_t i = 0; i < edges_per_node; ++i) {
      edges.push_back({v, picks[i]});
      endpoints.push_back(v);
      endpoints.push_back(picks[i]);
    }
  }
  return GrowthTrace{final_vertices, std::move(edges)};
}

GrowthTrace affiliation_trace(VertexId final_vertices, std::uint32_t regions,
                              double groups_per_actor, std::uint64_t seed) {
  if (final_vertices < 16)
    throw std::invalid_argument("affiliation_trace: need >= 16 actors");
  if (regions < 1)
    throw std::invalid_argument("affiliation_trace: regions must be >= 1");
  Rng rng{seed};
  std::vector<Edge> edges;
  const auto total_groups = static_cast<std::uint64_t>(
      std::max(1.0, groups_per_actor * final_vertices));
  // Groups appear in order; group g draws actors from the prefix of the
  // vertex universe that has "arrived" by then, so early snapshots contain
  // exactly the early collaborations.
  std::vector<VertexId> group;
  for (std::uint64_t gidx = 0; gidx < total_groups; ++gidx) {
    const auto arrived = static_cast<VertexId>(std::max<std::uint64_t>(
        16, (gidx + 1) * final_vertices / total_groups));
    const VertexId region_size = std::max<VertexId>(4, arrived / regions);
    const bool global = regions > 1 && rng.bernoulli(0.06);
    const std::uint32_t size =
        global ? 2 : 2 + static_cast<std::uint32_t>(rng.uniform(4));
    const auto home = static_cast<std::uint32_t>(rng.uniform(regions));
    group.clear();
    std::size_t attempts = 0;
    while (group.size() < size && attempts < 64u * size) {
      ++attempts;
      const std::uint32_t r =
          global ? static_cast<std::uint32_t>(rng.uniform(regions)) : home;
      const VertexId lo = std::min<VertexId>(
          static_cast<VertexId>(r) * region_size,
          arrived > region_size ? arrived - region_size : 0);
      const VertexId hi = std::min<VertexId>(lo + region_size, arrived);
      if (hi <= lo) continue;
      const VertexId actor = lo + static_cast<VertexId>(rng.uniform(hi - lo));
      bool duplicate = false;
      for (const VertexId a : group)
        if (a == actor) { duplicate = true; break; }
      if (!duplicate) group.push_back(actor);
    }
    for (std::size_t i = 0; i < group.size(); ++i)
      for (std::size_t j = i + 1; j < group.size(); ++j)
        edges.push_back({group[i], group[j]});
  }
  return GrowthTrace{final_vertices, std::move(edges)};
}

std::vector<EvolutionPoint> measure_evolution(
    const GrowthTrace& trace, const std::vector<VertexId>& snapshot_sizes,
    const EvolutionOptions& options) {
  if (!std::is_sorted(snapshot_sizes.begin(), snapshot_sizes.end()))
    throw std::invalid_argument("measure_evolution: sizes must be ascending");
  std::vector<EvolutionPoint> points;
  points.reserve(snapshot_sizes.size());
  for (const VertexId size : snapshot_sizes) {
    if (size < 16)
      throw std::invalid_argument("measure_evolution: snapshot too small");
    const Graph g = largest_component(trace.snapshot(size)).graph;
    EvolutionPoint point;
    point.snapshot_vertices = size;
    point.nodes = g.num_vertices();
    point.edges = g.num_edges();
    if (g.num_edges() == 0) {
      points.push_back(point);
      continue;
    }
    SlemOptions slem_options;
    slem_options.seed = options.seed;
    point.mu = second_largest_eigenvalue(g, slem_options).mu;

    const CoreDecomposition cores = core_decomposition(g);
    point.degeneracy = cores.degeneracy;
    for (const CoreLevel& level : core_profile(g, cores))
      point.max_core_count =
          std::max(point.max_core_count, level.num_components);

    ExpansionOptions expansion_options;
    expansion_options.num_sources = options.expansion_sources;
    expansion_options.seed = options.seed;
    point.min_expansion_factor =
        measure_expansion(g, expansion_options).min_alpha(g.num_vertices());
    points.push_back(point);
  }
  return points;
}

Graph apply_edge_batch(const Graph& g, const EdgeBatch& batch) {
  VertexId n = g.num_vertices();
  for (const Edge& e : batch.insertions) {
    const VertexId top = e.u > e.v ? e.u : e.v;
    if (top >= n) n = top + 1;
  }
  const auto less = [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  std::vector<Edge> removals;
  removals.reserve(batch.removals.size());
  for (const Edge& e : batch.removals)
    removals.push_back(e.u <= e.v ? e : Edge{e.v, e.u});
  std::sort(removals.begin(), removals.end(), less);
  const auto removed = [&](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return std::binary_search(removals.begin(), removals.end(), Edge{u, v},
                              less);
  };
  GraphBuilder builder{n};
  builder.reserve(static_cast<std::size_t>(g.num_edges()) +
                  batch.insertions.size());
  for (const Edge& e : g.edges())
    if (!removed(e.u, e.v)) builder.add_edge(e.u, e.v);
  for (const Edge& e : batch.insertions)
    if (e.u != e.v && !removed(e.u, e.v)) builder.add_edge(e.u, e.v);
  return builder.build();
}

}  // namespace sntrust

// Dynamic social graphs (the paper's Sec.-VI open problem): how do the
// measured properties evolve as a social graph grows?
//
// An EvolvingGraph replays a growth process (any generator expressed as an
// ordered edge stream) and materializes snapshots at chosen vertex counts;
// measure_evolution() runs the property suite on every snapshot so the
// long-term trends of mu, core structure and expansion can be examined.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// A growth trace: vertices appear in id order; edge i is added at step i.
/// Edges must be simple after deduplication (the snapshot builder dedups).
class GrowthTrace {
 public:
  GrowthTrace(VertexId final_vertices, std::vector<Edge> edges);

  VertexId final_vertices() const noexcept { return final_vertices_; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Snapshot containing exactly the first `num_vertices` vertices and
  /// every edge among them that has appeared in the stream. Throws
  /// std::invalid_argument when num_vertices exceeds the final count.
  Graph snapshot(VertexId num_vertices) const;

 private:
  VertexId final_vertices_;
  std::vector<Edge> edges_;
};

/// Growth trace of a preferential-attachment process (the BA model as an
/// explicit stream, so snapshots are exactly the BA graph at every size).
GrowthTrace preferential_attachment_trace(VertexId final_vertices,
                                          VertexId edges_per_node,
                                          std::uint64_t seed);

/// Growth trace of the regional affiliation (co-authorship) process: the
/// strict-trust class, growing one collaboration group at a time with the
/// actor universe expanding in proportion.
GrowthTrace affiliation_trace(VertexId final_vertices,
                              std::uint32_t regions,
                              double groups_per_actor,
                              std::uint64_t seed);

/// A batched structural delta — edges to insert and edges to remove, applied
/// together. The churn unit the serving layer's `apply_edges` consumes.
struct EdgeBatch {
  std::vector<Edge> insertions;
  std::vector<Edge> removals;
};

/// The graph after applying `batch` to `g`: the vertex universe grows to
/// cover every inserted endpoint, removals drop matching existing edges
/// (absent edges are ignored), and insertions dedup against the survivors.
/// A removal listed in the same batch as an insertion of the same pair wins.
/// Self loops are ignored. Returns a freshly built simple CSR graph; `g`
/// itself is untouched (Graph is immutable).
Graph apply_edge_batch(const Graph& g, const EdgeBatch& batch);

/// Properties measured per snapshot (a compact subset of PropertyReport —
/// the quantities whose evolution the open problem asks about).
struct EvolutionPoint {
  VertexId snapshot_vertices = 0;  ///< requested snapshot size
  std::uint64_t nodes = 0;         ///< largest-component size measured
  std::uint64_t edges = 0;
  double mu = 0.0;
  std::uint32_t degeneracy = 0;
  std::uint32_t max_core_count = 0;
  double min_expansion_factor = 0.0;
};

struct EvolutionOptions {
  std::uint32_t expansion_sources = 400;
  std::uint64_t seed = 1;
};

/// Measures every requested snapshot (each reduced to its largest
/// component). Snapshot sizes must be ascending and >= 16.
std::vector<EvolutionPoint> measure_evolution(
    const GrowthTrace& trace, const std::vector<VertexId>& snapshot_sizes,
    const EvolutionOptions& options = {});

}  // namespace sntrust

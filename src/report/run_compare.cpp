#include "report/run_compare.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace sntrust {

namespace {

double number_or(const json::Value* value, double fallback) {
  return value != nullptr && value->is_number() ? value->as_number()
                                                : fallback;
}

}  // namespace

RunReportData parse_run_report(const json::Value& document) {
  RunReportData data;
  const json::Value* version = document.find("schema_version");
  if (version == nullptr || !version->is_number())
    throw std::runtime_error("run report: missing schema_version");
  data.schema_version = version->as_int();
  if (data.schema_version != 1)
    throw std::runtime_error("run report: unsupported schema_version " +
                             std::to_string(data.schema_version));

  if (const json::Value* tool = document.find("tool");
      tool != nullptr && tool->is_string())
    data.tool = tool->as_string();

  if (const json::Value* config = document.find("config");
      config != nullptr && config->is_object()) {
    for (const json::Member& member : config->as_object()) {
      if (member.second.is_string()) {
        data.provenance.emplace(member.first, member.second.as_string());
      } else if (member.first == "scale" && member.second.is_number()) {
        data.has_scale = true;
        data.scale = member.second.as_number();
      } else if (member.first == "env" && member.second.is_object()) {
        for (const json::Member& env : member.second.as_object())
          if (env.second.is_string())
            data.provenance.emplace("env." + env.first,
                                    env.second.as_string());
      }
    }
  }

  if (const json::Value* totals = document.find("totals");
      totals != nullptr && totals->is_object())
    for (const json::Member& member : totals->as_object())
      if (member.second.is_number())
        data.totals.emplace(member.first, member.second.as_number());

  if (const json::Value* spans = document.find("spans");
      spans != nullptr && spans->is_array()) {
    for (const json::Value& row : spans->as_array()) {
      const json::Value* path = row.find("path");
      if (path == nullptr || !path->is_string())
        throw std::runtime_error("run report: span row without a path");
      RunReportData::SpanRow span;
      span.path = path->as_string();
      span.count =
          static_cast<std::uint64_t>(number_or(row.find("count"), 0.0));
      span.wall_ms = number_or(row.find("wall_ms"), 0.0);
      span.cpu_ms = number_or(row.find("cpu_ms"), 0.0);
      span.alloc_bytes =
          static_cast<std::uint64_t>(number_or(row.find("alloc_bytes"), 0.0));
      span.alloc_count =
          static_cast<std::uint64_t>(number_or(row.find("alloc_count"), 0.0));
      data.spans.push_back(std::move(span));
    }
  }

  if (const json::Value* metrics = document.find("metrics");
      metrics != nullptr && metrics->is_object()) {
    if (const json::Value* counters = metrics->find("counters");
        counters != nullptr && counters->is_object())
      for (const json::Member& member : counters->as_object())
        if (member.second.is_number())
          data.counters.emplace(member.first, member.second.as_number());
    if (const json::Value* gauges = metrics->find("gauges");
        gauges != nullptr && gauges->is_object())
      for (const json::Member& member : gauges->as_object())
        if (member.second.is_number())
          data.gauges.emplace(member.first, member.second.as_number());
  }

  if (const json::Value* telemetry = document.find("telemetry");
      telemetry != nullptr && telemetry->is_object()) {
    data.telemetry_frames =
        static_cast<std::int64_t>(number_or(telemetry->find("frames_written"),
                                            0.0));
    if (const json::Value* quantiles = telemetry->find("quantiles");
        quantiles != nullptr && quantiles->is_object()) {
      for (const json::Member& member : quantiles->as_object()) {
        if (!member.second.is_object()) continue;
        RunReportData::QuantileRow row;
        row.count = static_cast<std::uint64_t>(
            number_or(member.second.find("count"), 0.0));
        const json::Value* p50 = member.second.find("p50");
        row.has_values = p50 != nullptr;
        row.p50 = number_or(p50, 0.0);
        row.p90 = number_or(member.second.find("p90"), 0.0);
        row.p99 = number_or(member.second.find("p99"), 0.0);
        row.p999 = number_or(member.second.find("p999"), 0.0);
        row.min = number_or(member.second.find("min"), 0.0);
        row.max = number_or(member.second.find("max"), 0.0);
        data.quantiles.emplace(member.first, row);
      }
    }
  }

  if (const json::Value* diag = document.find("diag");
      diag != nullptr && diag->is_object()) {
    data.has_diag = true;
    if (const json::Value* converged = diag->find("converged");
        converged != nullptr && converged->is_bool())
      data.diag_converged = converged->as_bool();
    data.diag_nonconverged =
        static_cast<std::int64_t>(number_or(diag->find("nonconverged"), 0.0));
    if (const json::Value* flagged = diag->find("flagged_sources");
        flagged != nullptr && flagged->is_array()) {
      for (const json::Value& row : flagged->as_array()) {
        if (!row.is_object()) continue;
        RunReportData::FlaggedSource source;
        if (const json::Value* kind = row.find("kind");
            kind != nullptr && kind->is_string())
          source.kind = kind->as_string();
        source.source =
            static_cast<std::uint64_t>(number_or(row.find("source"), 0.0));
        source.iterations = static_cast<std::uint64_t>(
            number_or(row.find("iterations"), 0.0));
        source.final_value = number_or(row.find("final_value"), 0.0);
        data.flagged_sources.push_back(std::move(source));
      }
    }
    if (const json::Value* estimates = diag->find("estimates");
        estimates != nullptr && estimates->is_object()) {
      for (const json::Member& member : estimates->as_object()) {
        if (!member.second.is_object()) continue;
        RunReportData::EstimateRow row;
        row.mean = number_or(member.second.find("mean"), 0.0);
        row.ci95_lo = number_or(member.second.find("ci95_lo"), 0.0);
        row.ci95_hi = number_or(member.second.find("ci95_hi"), 0.0);
        row.ci95_width = number_or(member.second.find("ci95_width"), 0.0);
        row.n = static_cast<std::uint64_t>(
            number_or(member.second.find("n"), 0.0));
        row.ess = number_or(member.second.find("ess"), 0.0);
        data.estimates.emplace(member.first, row);
      }
    }
  }
  return data;
}

RunReportData load_run_report(const std::string& path) {
  std::ifstream in{path};
  if (!in)
    throw std::runtime_error("run report: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_run_report(json::Value::parse(buffer.str()));
  } catch (const std::exception& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

std::string provenance_mismatch(const RunReportData& baseline,
                                const RunReportData& candidate) {
  // Graph fingerprints: when both runs measured a graph under the same
  // config key, the fingerprints must agree — otherwise the diff compares
  // measurements of two different graphs.
  for (const auto& [key, base_value] : baseline.provenance) {
    if (key.rfind("graph.", 0) != 0) continue;
    const auto found = candidate.provenance.find(key);
    if (found == candidate.provenance.end()) continue;
    if (found->second != base_value)
      return "graph fingerprint mismatch for \"" + key + "\": baseline " +
             base_value + " vs candidate " + found->second +
             " — the runs measured different graphs";
  }
  if (baseline.has_scale && candidate.has_scale &&
      baseline.scale != candidate.scale)
    return "workload scale mismatch: baseline " +
           std::to_string(baseline.scale) + " vs candidate " +
           std::to_string(candidate.scale) +
           " — timings at different scales are not comparable";
  return {};
}

const char* to_string(DiffRow::Status status) {
  switch (status) {
    case DiffRow::Status::Ok: return "ok";
    case DiffRow::Status::Regressed: return "REGRESSED";
    case DiffRow::Status::Improved: return "improved";
    case DiffRow::Status::Added: return "added";
    case DiffRow::Status::Removed: return "removed";
  }
  return "?";
}

namespace {

double delta_pct(double baseline, double candidate) {
  if (baseline <= 0.0)
    return candidate > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  return 100.0 * (candidate - baseline) / baseline;
}

/// Classifies one aligned quantity against a symmetric threshold.
DiffRow classify(std::string name, std::string metric, double baseline,
                 double candidate, double threshold_pct) {
  DiffRow row;
  row.name = std::move(name);
  row.metric = std::move(metric);
  row.baseline = baseline;
  row.candidate = candidate;
  row.delta_pct = delta_pct(baseline, candidate);
  if (row.delta_pct > threshold_pct)
    row.status = DiffRow::Status::Regressed;
  else if (row.delta_pct < -threshold_pct)
    row.status = DiffRow::Status::Improved;
  return row;
}

}  // namespace

DiffResult diff_run_reports(const RunReportData& baseline,
                            const RunReportData& candidate,
                            const DiffOptions& options) {
  DiffResult result;

  std::map<std::string, const RunReportData::SpanRow*> baseline_spans;
  for (const RunReportData::SpanRow& span : baseline.spans)
    baseline_spans.emplace(span.path, &span);

  for (const RunReportData::SpanRow& span : candidate.spans) {
    const auto found = baseline_spans.find(span.path);
    if (found == baseline_spans.end()) {
      DiffRow row;
      row.name = span.path;
      row.metric = "wall_ms";
      row.candidate = span.wall_ms;
      row.status = DiffRow::Status::Added;
      result.spans.push_back(std::move(row));
      continue;
    }
    const RunReportData::SpanRow& base = *found->second;
    baseline_spans.erase(found);
    // Spans tiny in both runs are timer noise, not signal.
    if (std::max(base.wall_ms, span.wall_ms) < options.min_wall_ms) continue;
    DiffRow wall = classify(span.path, "wall_ms", base.wall_ms, span.wall_ms,
                            options.span_threshold_pct);
    if (wall.status == DiffRow::Status::Regressed) result.breached = true;
    result.spans.push_back(std::move(wall));
    if (options.gate_cpu &&
        std::max(base.cpu_ms, span.cpu_ms) >= options.min_wall_ms) {
      DiffRow cpu = classify(span.path, "cpu_ms", base.cpu_ms, span.cpu_ms,
                             options.span_threshold_pct);
      if (cpu.status == DiffRow::Status::Regressed) result.breached = true;
      if (cpu.status != DiffRow::Status::Ok)
        result.spans.push_back(std::move(cpu));
    }
  }
  for (const auto& [path, span] : baseline_spans) {
    DiffRow row;
    row.name = path;
    row.metric = "wall_ms";
    row.baseline = span->wall_ms;
    row.status = DiffRow::Status::Removed;
    result.spans.push_back(std::move(row));
  }

  // Totals: wall and peak RSS gate; the rest are context.
  auto total_of = [](const RunReportData& report, const char* key) {
    const auto found = report.totals.find(key);
    return found == report.totals.end() ? 0.0 : found->second;
  };
  {
    DiffRow wall = classify("totals", "wall_ms", total_of(baseline, "wall_ms"),
                            total_of(candidate, "wall_ms"),
                            options.total_threshold_pct);
    if (wall.status == DiffRow::Status::Regressed) result.breached = true;
    result.totals.push_back(std::move(wall));
  }
  {
    DiffRow cpu = classify("totals", "cpu_ms", total_of(baseline, "cpu_ms"),
                           total_of(candidate, "cpu_ms"),
                           options.total_threshold_pct);
    if (options.gate_cpu && cpu.status == DiffRow::Status::Regressed)
      result.breached = true;
    else if (!options.gate_cpu && cpu.status == DiffRow::Status::Regressed)
      cpu.status = DiffRow::Status::Ok;  // informational without the gate
    result.totals.push_back(std::move(cpu));
  }
  {
    DiffRow rss = classify(
        "totals", "peak_rss_bytes", total_of(baseline, "peak_rss_bytes"),
        total_of(candidate, "peak_rss_bytes"), options.rss_threshold_pct);
    if (rss.status == DiffRow::Status::Regressed) result.breached = true;
    result.totals.push_back(std::move(rss));
  }

  // Telemetry quantiles: align by histogram name, gate p50 and p99 with the
  // same symmetric-threshold machinery as spans, with their own (wider)
  // threshold and noise floor. Added/Removed histograms are informational —
  // instrumenting a new code path is a code change, not a regression.
  for (const auto& [name, cand] : candidate.quantiles) {
    const auto found = baseline.quantiles.find(name);
    if (found == baseline.quantiles.end()) {
      DiffRow row;
      row.name = name;
      row.metric = "p50_ms";
      row.candidate = cand.p50;
      row.status = DiffRow::Status::Added;
      result.quantiles.push_back(std::move(row));
      continue;
    }
    const RunReportData::QuantileRow& base = found->second;
    if (!base.has_values || !cand.has_values) continue;  // empty on a side
    const struct {
      const char* metric;
      double baseline_value;
      double candidate_value;
    } tracked[] = {{"p50_ms", base.p50, cand.p50},
                   {"p99_ms", base.p99, cand.p99}};
    for (const auto& q : tracked) {
      if (std::max(q.baseline_value, q.candidate_value) <
          options.min_quantile_ms)
        continue;  // sub-floor latencies are timer noise
      DiffRow row = classify(name, q.metric, q.baseline_value,
                             q.candidate_value, options.quantile_threshold_pct);
      if (row.status == DiffRow::Status::Regressed) result.breached = true;
      result.quantiles.push_back(std::move(row));
    }
  }
  for (const auto& [name, base] : baseline.quantiles) {
    if (candidate.quantiles.count(name) != 0) continue;
    DiffRow row;
    row.name = name;
    row.metric = "p50_ms";
    row.baseline = base.p50;
    row.status = DiffRow::Status::Removed;
    result.quantiles.push_back(std::move(row));
  }

  // Estimate-quality gates: only when both runs carry a diag section (a
  // diag-off run has nothing to compare, and a diag-on candidate against a
  // pre-diag baseline is a code change, not a quality regression).
  if (baseline.has_diag && candidate.has_diag) {
    {
      // Nonconverged count is an absolute gate, not a percentage: each new
      // cap-exit source is an estimate the run can no longer vouch for.
      DiffRow row;
      row.name = "diag";
      row.metric = "nonconverged";
      row.baseline = static_cast<double>(baseline.diag_nonconverged);
      row.candidate = static_cast<double>(candidate.diag_nonconverged);
      row.delta_pct = delta_pct(row.baseline, row.candidate);
      if (candidate.diag_nonconverged >
          baseline.diag_nonconverged + options.max_new_nonconverged) {
        row.status = DiffRow::Status::Regressed;
        result.breached = true;
      } else if (candidate.diag_nonconverged < baseline.diag_nonconverged) {
        row.status = DiffRow::Status::Improved;
      }
      result.quality.push_back(std::move(row));
    }
    for (const auto& [name, cand] : candidate.estimates) {
      const auto found = baseline.estimates.find(name);
      if (found == baseline.estimates.end()) {
        DiffRow row;
        row.name = name;
        row.metric = "ci95_width";
        row.candidate = cand.ci95_width;
        row.status = DiffRow::Status::Added;
        result.quality.push_back(std::move(row));
        continue;
      }
      const RunReportData::EstimateRow& base = found->second;
      if (std::max(base.ci95_width, cand.ci95_width) < options.min_ci_width)
        continue;  // both intervals are effectively exact
      DiffRow row = classify(name, "ci95_width", base.ci95_width,
                             cand.ci95_width, options.ci_widen_threshold_pct);
      if (row.status == DiffRow::Status::Regressed) result.breached = true;
      result.quality.push_back(std::move(row));
    }
    for (const auto& [name, base] : baseline.estimates) {
      if (candidate.estimates.count(name) != 0) continue;
      DiffRow row;
      row.name = name;
      row.metric = "ci95_width";
      row.baseline = base.ci95_width;
      row.status = DiffRow::Status::Removed;
      result.quality.push_back(std::move(row));
    }
  }
  return result;
}

Table diff_table(const DiffResult& result) {
  Table table{{"kind", "name", "metric", "baseline", "candidate", "delta",
               "status"}};
  auto add_rows = [&table](const std::vector<DiffRow>& rows, const char* kind,
                           bool regressions_only) {
    for (const DiffRow& row : rows) {
      const bool regressed = row.status == DiffRow::Status::Regressed;
      if (regressions_only != regressed) continue;
      const std::string delta =
          row.status == DiffRow::Status::Added ||
                  row.status == DiffRow::Status::Removed
              ? "-"
              : (std::isfinite(row.delta_pct)
                     ? fixed(row.delta_pct, 1) + "%"
                     : "inf");
      table.add_row({kind, row.name, row.metric, fixed(row.baseline, 3),
                     fixed(row.candidate, 3), delta, to_string(row.status)});
    }
  };
  // Regressions first so a failing CI log leads with the verdict.
  add_rows(result.spans, "span", true);
  add_rows(result.totals, "total", true);
  add_rows(result.quantiles, "quantile", true);
  add_rows(result.quality, "quality", true);
  add_rows(result.spans, "span", false);
  add_rows(result.totals, "total", false);
  add_rows(result.quantiles, "quantile", false);
  add_rows(result.quality, "quality", false);
  return table;
}

}  // namespace sntrust

#include "report/csv_sink.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace sntrust {

std::string maybe_write_csv(const Table& table, const std::string& name) {
  const char* dir = std::getenv("SNTRUST_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out{path};
  if (!out)
    throw std::runtime_error("maybe_write_csv: cannot open " + path);
  table.print_csv(out);
  if (!out) throw std::runtime_error("maybe_write_csv: write failed " + path);
  return path;
}

}  // namespace sntrust

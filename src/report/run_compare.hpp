// Run-report comparison: loads the JSON artifacts RunReporter emits, aligns
// two runs by span path / metric name, and classifies each aligned row
// against configurable regression thresholds. The core of
// tools/sntrust_benchdiff, kept in the library so the gating logic is unit
// tested and reusable (CI smoke gates, scripted sweeps).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "report/table.hpp"
#include "util/json.hpp"

namespace sntrust {

/// Parsed form of one run-report JSON (schema version 1; see
/// obs/run_report.hpp for the schema).
struct RunReportData {
  std::int64_t schema_version = 0;
  std::string tool;

  /// Provenance from the "config" section: every string-valued config entry
  /// (compiler, build_flags, graph fingerprints, env.* knobs flattened with
  /// an "env." prefix) plus "scale". Reports written before provenance
  /// existed simply have an empty map and compare as compatible.
  std::map<std::string, std::string> provenance;
  bool has_scale = false;
  double scale = 0.0;

  std::map<std::string, double> totals;  ///< wall_ms, cpu_ms, peak_rss_bytes...

  struct SpanRow {
    std::string path;
    std::uint64_t count = 0;
    double wall_ms = 0.0;
    double cpu_ms = 0.0;
    std::uint64_t alloc_bytes = 0;
    std::uint64_t alloc_count = 0;
  };
  std::vector<SpanRow> spans;  ///< in report order

  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;

  /// One latency-quantile summary from the report's "telemetry" section.
  /// `has_values` is false for an empty histogram (count == 0 omits the
  /// value fields — the empty-histogram contract).
  struct QuantileRow {
    std::uint64_t count = 0;
    bool has_values = false;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, QuantileRow> quantiles;
  std::int64_t telemetry_frames = 0;  ///< telemetry.frames_written (0 if none)

  /// One estimate from the "diag" section, with its CI95.
  struct EstimateRow {
    double mean = 0.0;
    double ci95_lo = 0.0;
    double ci95_hi = 0.0;
    double ci95_width = 0.0;
    std::uint64_t n = 0;
    double ess = 0.0;
  };
  /// One flagged (cap-exit) source from the "diag" section.
  struct FlaggedSource {
    std::string kind;
    std::uint64_t source = 0;
    std::uint64_t iterations = 0;
    double final_value = 0.0;
  };
  /// Estimator diagnostics (SNTRUST_DIAG runs only; `has_diag` is false when
  /// the report carries no "diag" section, and quality gates then no-op).
  bool has_diag = false;
  bool diag_converged = true;
  std::int64_t diag_nonconverged = 0;
  std::vector<FlaggedSource> flagged_sources;
  std::map<std::string, EstimateRow> estimates;
};

/// Parses an in-memory report document; throws std::runtime_error on a
/// missing/mismatched schema_version or malformed sections.
RunReportData parse_run_report(const json::Value& document);

/// Reads and parses a report file; throws on I/O or parse errors.
RunReportData load_run_report(const std::string& path);

struct DiffOptions {
  double span_threshold_pct = 25.0;   ///< wall regression gate per span
  double total_threshold_pct = 15.0;  ///< wall regression gate on totals
  double rss_threshold_pct = 50.0;    ///< peak-RSS regression gate
  double min_wall_ms = 5.0;  ///< spans below this in both runs are noise
  bool gate_cpu = false;     ///< also breach on span cpu_ms regressions
  /// Latency-quantile regression gate (p50/p99 from the telemetry section);
  /// wider than the span gate because tail quantiles are noisier.
  double quantile_threshold_pct = 40.0;
  /// Quantiles below this in both runs are timer noise, not signal.
  double min_quantile_ms = 1.0;
  /// Quality gates over the "diag" section (only applied when both reports
  /// carry one): an estimate whose CI95 width grows by more than this
  /// breaches — the optimization made the estimate *less certain* even if
  /// it got faster.
  double ci_widen_threshold_pct = 50.0;
  /// How many sources may newly exit on an iteration cap (instead of the
  /// tolerance) before the diff breaches. 0: any new non-convergence fails.
  std::int64_t max_new_nonconverged = 0;
  /// Tiny CI widths in both runs are float noise, not an estimate-quality
  /// signal.
  double min_ci_width = 1e-9;
};

struct DiffRow {
  enum class Status { Ok, Regressed, Improved, Added, Removed };
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  double delta_pct = 0.0;  ///< (candidate - baseline) / baseline * 100
  Status status = Status::Ok;
  std::string metric;  ///< which quantity was gated ("wall_ms", ...)
};

struct DiffResult {
  std::vector<DiffRow> spans;
  std::vector<DiffRow> totals;
  std::vector<DiffRow> quantiles;  ///< telemetry p50/p99 rows per histogram
  std::vector<DiffRow> quality;    ///< diag CI widths + nonconverged count
  bool breached = false;  ///< any Regressed row past its threshold
};

const char* to_string(DiffRow::Status status);

/// Checks whether two reports measured the same thing: graph fingerprints
/// (config keys starting with "graph.") and the workload scale must match
/// when both sides recorded them — kernel/layout/thread knobs are allowed
/// to differ (comparing those is the whole point of a perf diff). Returns
/// an empty string when compatible, otherwise a human-readable explanation
/// of the first mismatch. Reports without provenance (pre-provenance
/// baselines) always compare as compatible.
std::string provenance_mismatch(const RunReportData& baseline,
                                const RunReportData& candidate);

/// Aligns spans by path and totals by key, classifying each row. A span
/// breaches when its candidate wall (or cpu with gate_cpu) exceeds baseline
/// by more than span_threshold_pct and either side clears min_wall_ms.
/// Totals gate wall_ms at total_threshold_pct and peak_rss_bytes at
/// rss_threshold_pct. Added/Removed spans never breach (new phases are a
/// code change, not a regression) but are listed for the reader.
DiffResult diff_run_reports(const RunReportData& baseline,
                            const RunReportData& candidate,
                            const DiffOptions& options);

/// Renders the diff as a printable table (regressions first).
Table diff_table(const DiffResult& result);

}  // namespace sntrust

// Optional CSV sink for bench artifacts: when SNTRUST_CSV_DIR is set, every
// table a bench passes through maybe_write_csv() is also written as
// <dir>/<name>.csv, so the paper artifacts can be re-plotted without
// scraping stdout.
#pragma once

#include <string>

#include "report/table.hpp"

namespace sntrust {

/// Writes `table` to $SNTRUST_CSV_DIR/<name>.csv when the variable is set
/// and non-empty; silently does nothing otherwise. Returns the path written
/// (empty when skipped). Throws std::runtime_error when the directory is
/// set but unwritable — a misconfigured sink should not silently drop data.
std::string maybe_write_csv(const Table& table, const std::string& name);

}  // namespace sntrust

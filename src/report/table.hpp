// Fixed-width text table printer. Every bench prints its paper artifact
// through this so the output is uniform and diffable run-to-run.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sntrust {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count (throws otherwise).
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders with column alignment, a header separator, and a trailing
  /// newline.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sntrust

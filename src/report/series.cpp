#include "report/series.hpp"

#include <map>
#include <ostream>
#include <stdexcept>

#include "report/table.hpp"
#include "util/format.hpp"

namespace sntrust {

void SeriesSet::add_series(const std::string& name,
                           const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("SeriesSet::add_series: x/y size mismatch");
  series_.push_back({name, x, y});
}

void SeriesSet::print(std::ostream& out) const {
  // Union of x values -> per-series y at that x (last write wins on
  // duplicates within a series).
  std::map<double, std::vector<std::string>> rows;
  for (std::size_t s = 0; s < series_.size(); ++s) {
    for (std::size_t i = 0; i < series_[s].x.size(); ++i) {
      auto& cells = rows[series_[s].x[i]];
      cells.resize(series_.size());
      cells[s] = compact(series_[s].y[i]);
    }
  }

  std::vector<std::string> headers{x_label_};
  for (const Series& s : series_) headers.push_back(s.name);
  Table table{headers};
  for (auto& [x, cells] : rows) {
    std::vector<std::string> row{compact(x)};
    cells.resize(series_.size());
    for (const std::string& cell : cells) row.push_back(cell);
    table.add_row(std::move(row));
  }
  table.print(out);
}

}  // namespace sntrust

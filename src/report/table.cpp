#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace sntrust {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: column count mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c == 0 ? 0 : 2);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (const char ch : cell) {
          if (ch == '"') out << "\"\"";
          else out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace sntrust

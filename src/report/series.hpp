// Named-series ("figure") printer: renders (x, y) series the way the paper's
// figures plot them, as aligned columns with one series per column, so bench
// output can be eyeballed or piped into a plotting tool.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sntrust {

class SeriesSet {
 public:
  /// `x_label` names the shared x axis.
  explicit SeriesSet(std::string x_label) : x_label_(std::move(x_label)) {}

  /// Adds one series; x/y must be the same length (throws otherwise).
  void add_series(const std::string& name, const std::vector<double>& x,
                  const std::vector<double>& y);

  std::size_t num_series() const noexcept { return series_.size(); }

  /// Prints a merged table over the union of x values; missing points are
  /// blank. Values use %.6g.
  void print(std::ostream& out) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
  };
  std::string x_label_;
  std::vector<Series> series_;
};

}  // namespace sntrust

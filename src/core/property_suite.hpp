// The paper's primary contribution packaged as a library: one call measures
// every property the paper relates — mixing (sampling + spectral), core
// structure, and expansion — for any connected social graph, and reports the
// cross-property observations (fast mixing <-> one large core; expansion
// tracks mixing).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cores/core_profile.hpp"
#include "expansion/expansion_profile.hpp"
#include "graph/graph.hpp"
#include "markov/mixing.hpp"
#include "markov/spectral.hpp"

namespace sntrust {

struct PropertySuiteOptions {
  /// Mixing measurement (sampling method).
  std::uint32_t mixing_sources = 50;
  std::uint32_t mixing_max_walk = 100;
  /// Expansion sweep source budget (0 = all vertices).
  std::uint32_t expansion_sources = 1000;
  /// Target variation distance for the mixing-time estimate; 0 means the
  /// paper's epsilon = 1/n (Theta(1/n)).
  double epsilon = 0.0;
  std::uint64_t seed = 1;
  /// Worker threads for the per-source sweeps (mixing, expansion) and the
  /// spectral matvecs. 0 inherits the process default (SNTRUST_THREADS /
  /// hardware_concurrency); results are identical for any value.
  std::uint32_t threads = 0;
  /// Distribution-evolution kernel for the mixing sweep; unset inherits the
  /// process mode (SNTRUST_KERNEL). All modes give bitwise-identical curves.
  std::optional<KernelMode> kernel;
};

/// Everything the paper measures about one graph.
struct PropertyReport {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;

  // Structural characteristics (the "known characteristics" of the
  // Dell'Amico discussion, measured alongside so reports are
  // self-contained).
  double mean_degree = 0.0;
  double clustering = 0.0;       ///< average local clustering
  double assortativity = 0.0;    ///< Newman's degree assortativity
  std::uint32_t diameter_lb = 0; ///< double-sweep lower bound

  // Mixing.
  SlemResult slem;                  ///< second largest eigenvalue modulus
  MixingBounds bounds;              ///< Sinclair bounds at epsilon
  MixingCurves mixing;              ///< TVD-vs-length curves
  double epsilon = 0.0;
  /// Sampling-method estimate of T(epsilon); UINT32_MAX when the curve did
  /// not drop below epsilon within mixing_max_walk.
  std::uint32_t mixing_time = 0;

  // Cores.
  std::uint32_t degeneracy = 0;
  std::vector<CoreLevel> core_levels;
  /// nu_k at k = degeneracy: relative size of the innermost core.
  double top_core_relative_size = 0.0;
  /// Max number of simultaneous connected cores over all k (1 = always a
  /// single core — the paper's fast-mixing signature).
  std::uint32_t max_core_count = 0;

  // Expansion.
  ExpansionProfile expansion;
  /// Minimum mean expansion factor over envelope sizes <= n/2.
  double min_expansion_factor = 0.0;
};

/// Runs the full measurement suite. The graph must be connected with >= 2
/// vertices (throws std::invalid_argument otherwise).
PropertyReport measure_properties(const Graph& g,
                                  const PropertySuiteOptions& options = {});

/// One-line verdicts used by examples and EXPERIMENTS.md; derived purely
/// from the report so tests can pin them.
struct PropertyVerdict {
  bool fast_mixing = false;      ///< T(eps) within 2x log2(n)
  bool single_core = false;      ///< max_core_count == 1
  bool good_expander = false;    ///< min expansion factor >= 0.05
};
PropertyVerdict classify(const PropertyReport& report);

}  // namespace sntrust

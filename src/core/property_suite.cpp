#include "core/property_suite.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cores/kcore.hpp"
#include "exec/cancel.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace sntrust {

PropertyReport measure_properties(const Graph& g,
                                  const PropertySuiteOptions& options) {
  if (g.num_vertices() < 2 || g.num_edges() == 0)
    throw std::invalid_argument("measure_properties: graph too small");
  if (!is_connected(g))
    throw std::invalid_argument("measure_properties: graph must be connected");

  const obs::Span suite_span{"measure_properties"};
  // Pin the sweep parallelism for the whole suite; restored on return.
  const parallel::ScopedThreadCount thread_scope{
      options.threads != 0 ? options.threads : parallel::thread_count()};
  obs::set_gauge("suite.threads", parallel::thread_count());

  PropertyReport report;
  report.nodes = g.num_vertices();
  report.edges = g.num_edges();
  report.epsilon = options.epsilon > 0.0
                       ? options.epsilon
                       : 1.0 / static_cast<double>(g.num_vertices());

  {  // Structural characteristics.
    const obs::Span span{"stats"};
    report.mean_degree =
        2.0 * static_cast<double>(g.num_edges()) / g.num_vertices();
    report.clustering = average_local_clustering(g);
    report.assortativity = degree_assortativity(g);
    report.diameter_lb = double_sweep_diameter(g);
  }

  exec::process_token().check();  // phase boundary
  {  // Spectral side.
    const obs::Span span{"spectral"};
    SlemOptions slem_options;
    slem_options.seed = options.seed ^ 0xa076bc9af7d1c8e3ULL;
    report.slem = second_largest_eigenvalue(g, slem_options);
    if (report.slem.mu > 0.0 && report.slem.mu < 1.0)
      report.bounds =
          sinclair_bounds(report.slem.mu, report.epsilon, g.num_vertices());
  }

  exec::process_token().check();  // phase boundary
  {  // Sampling side.
    const obs::Span span{"mixing"};
    MixingOptions mixing_options;
    mixing_options.num_sources = options.mixing_sources;
    mixing_options.max_walk_length = options.mixing_max_walk;
    mixing_options.seed = options.seed;
    mixing_options.kernel = options.kernel;
    report.mixing = measure_mixing(g, mixing_options);
    obs::set_gauge("suite.kernel_mode", static_cast<double>(static_cast<int>(
        mixing_options.kernel.value_or(kernel_mode()))));
    report.mixing_time = mixing_time_estimate(report.mixing, report.epsilon);
  }

  exec::process_token().check();  // phase boundary
  {  // Cores.
    const obs::Span span{"cores"};
    const CoreDecomposition cores = core_decomposition(g);
    report.degeneracy = cores.degeneracy;
    report.core_levels = core_profile(g, cores);
    if (!report.core_levels.empty()) {
      report.top_core_relative_size = report.core_levels.back().nu;
      for (const CoreLevel& level : report.core_levels)
        report.max_core_count =
            std::max(report.max_core_count, level.num_components);
    }
  }

  exec::process_token().check();  // phase boundary
  {  // Expansion.
    const obs::Span span{"expansion"};
    ExpansionOptions expansion_options;
    expansion_options.num_sources = options.expansion_sources;
    expansion_options.seed = options.seed ^ 0x51ed270b8a0f6d1fULL;
    report.expansion = measure_expansion(g, expansion_options);
    report.min_expansion_factor = report.expansion.min_alpha(g.num_vertices());
  }

  return report;
}

PropertyVerdict classify(const PropertyReport& report) {
  PropertyVerdict verdict;
  const double log_n = std::log2(std::max<double>(2.0, report.nodes));
  verdict.fast_mixing = report.mixing_time != 0xFFFFFFFFu &&
                        report.mixing_time <= 2.0 * log_n;
  verdict.single_core = report.max_core_count == 1;
  verdict.good_expander = report.min_expansion_factor >= 0.05;
  return verdict;
}

}  // namespace sntrust

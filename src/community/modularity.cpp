#include <stdexcept>

#include "community/community.hpp"

namespace sntrust {

double modularity(const Graph& g, const Partition& partition) {
  if (partition.community_of.size() != g.num_vertices())
    throw std::invalid_argument("modularity: partition size mismatch");
  const double m = static_cast<double>(g.num_edges());
  if (m == 0.0) throw std::invalid_argument("modularity: graph has no edges");

  std::vector<double> internal(partition.count, 0.0);  // e_c (edges inside)
  std::vector<double> volume(partition.count, 0.0);    // d_c (degree sum)
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t c = partition.community_of[v];
    volume[c] += static_cast<double>(g.degree(v));
    for (const VertexId w : g.neighbors(v))
      if (v < w && partition.community_of[w] == c) internal[c] += 1.0;
  }

  double q = 0.0;
  for (std::uint32_t c = 0; c < partition.count; ++c) {
    const double fraction = internal[c] / m;
    const double expected = volume[c] / (2.0 * m);
    q += fraction - expected * expected;
  }
  return q;
}

double conductance(const Graph& g, const std::vector<std::uint8_t>& in_set) {
  if (in_set.size() != g.num_vertices())
    throw std::invalid_argument("conductance: mask size mismatch");
  if (g.num_edges() == 0)
    throw std::invalid_argument("conductance: graph has no edges");

  std::uint64_t cut = 0;
  std::uint64_t vol_in = 0;
  std::uint64_t vol_out = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t deg = g.degree(v);
    if (in_set[v]) vol_in += deg;
    else vol_out += deg;
    if (!in_set[v]) continue;
    for (const VertexId w : g.neighbors(v))
      if (!in_set[w]) ++cut;
  }
  if (vol_in == 0 || vol_out == 0)
    throw std::invalid_argument("conductance: S and its complement must be non-empty in volume");
  return static_cast<double>(cut) /
         static_cast<double>(std::min(vol_in, vol_out));
}

}  // namespace sntrust

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "community/community.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

/// A weighted multigraph for the coarsening levels (the base level has unit
/// weights; merged communities accumulate edge weights and self loops).
struct WeightedGraph {
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency;
  std::vector<double> self_loop;  ///< internal weight (counted once)
  double total_weight = 0.0;      ///< sum of edge weights incl. self loops

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(adjacency.size());
  }
  double weighted_degree(std::uint32_t v) const {
    double d = 2.0 * self_loop[v];
    for (const auto& [w, weight] : adjacency[v]) d += weight;
    return d;
  }
};

WeightedGraph from_graph(const Graph& g) {
  WeightedGraph out;
  out.adjacency.resize(g.num_vertices());
  out.self_loop.assign(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out.adjacency[v].reserve(g.degree(v));
    for (const VertexId w : g.neighbors(v)) out.adjacency[v].push_back({w, 1.0});
  }
  out.total_weight = static_cast<double>(g.num_edges());
  return out;
}

/// One level of local moves; returns the (dense) community assignment and
/// whether anything moved.
bool local_moves(const WeightedGraph& g, std::vector<std::uint32_t>& community,
                 std::uint32_t max_passes, Rng& rng) {
  const std::uint32_t n = g.size();
  const double m2 = 2.0 * g.total_weight;
  std::vector<double> community_degree(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v)
    community_degree[community[v]] += g.weighted_degree(v);

  std::vector<std::uint32_t> order(n);
  for (std::uint32_t v = 0; v < n; ++v) order[v] = v;

  bool any_move = false;
  std::unordered_map<std::uint32_t, double> weight_to;
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    rng.shuffle(std::span<std::uint32_t>{order});
    bool moved = false;
    for (const std::uint32_t v : order) {
      const std::uint32_t current = community[v];
      const double degree = g.weighted_degree(v);

      weight_to.clear();
      for (const auto& [w, weight] : g.adjacency[v])
        if (w != v) weight_to[community[w]] += weight;

      // Remove v from its community for the gain computation.
      community_degree[current] -= degree;
      const double base_links = weight_to.count(current) != 0
                                    ? weight_to[current]
                                    : 0.0;
      double best_gain = base_links - community_degree[current] * degree / m2;
      std::uint32_t best_community = current;
      for (const auto& [c, links] : weight_to) {
        if (c == current) continue;
        const double gain = links - community_degree[c] * degree / m2;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_community = c;
        }
      }
      community[v] = best_community;
      community_degree[best_community] += degree;
      if (best_community != current) moved = true;
    }
    any_move = any_move || moved;
    if (!moved) break;
  }
  return any_move;
}

/// Coarsens by communities; fills `dense_of` with community -> new id.
WeightedGraph coarsen(const WeightedGraph& g,
                      const std::vector<std::uint32_t>& community,
                      std::vector<std::uint32_t>& dense_of) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (const std::uint32_t c : community)
    remap.emplace(c, static_cast<std::uint32_t>(remap.size()));
  dense_of.resize(community.size());
  for (std::size_t v = 0; v < community.size(); ++v)
    dense_of[v] = remap[community[v]];

  WeightedGraph out;
  out.adjacency.resize(remap.size());
  out.self_loop.assign(remap.size(), 0.0);
  out.total_weight = g.total_weight;

  std::vector<std::unordered_map<std::uint32_t, double>> accumulate(
      remap.size());
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    const std::uint32_t cv = dense_of[v];
    out.self_loop[cv] += g.self_loop[v];
    for (const auto& [w, weight] : g.adjacency[v]) {
      const std::uint32_t cw = dense_of[w];
      if (cv == cw) {
        out.self_loop[cv] += 0.5 * weight;  // each end contributes half
      } else {
        accumulate[cv][cw] += weight;
      }
    }
  }
  for (std::uint32_t c = 0; c < remap.size(); ++c) {
    out.adjacency[c].assign(accumulate[c].begin(), accumulate[c].end());
    std::sort(out.adjacency[c].begin(), out.adjacency[c].end());
  }
  return out;
}

}  // namespace

Partition louvain(const Graph& g, const LouvainOptions& options) {
  const VertexId n = g.num_vertices();
  Partition result;
  result.community_of.resize(n);
  for (VertexId v = 0; v < n; ++v) result.community_of[v] = v;
  result.count = n;
  if (n == 0 || g.num_edges() == 0) return result;

  Rng rng{options.seed};
  WeightedGraph level = from_graph(g);
  // flat[v] = current community of original vertex v, expressed in the
  // current level's node ids.
  std::vector<std::uint32_t> flat(n);
  for (VertexId v = 0; v < n; ++v) flat[v] = v;

  for (std::uint32_t depth = 0; depth < options.max_levels; ++depth) {
    std::vector<std::uint32_t> community(level.size());
    for (std::uint32_t v = 0; v < level.size(); ++v) community[v] = v;
    const bool moved = local_moves(level, community, options.max_passes, rng);
    if (!moved) break;
    std::vector<std::uint32_t> dense_of;
    level = coarsen(level, community, dense_of);
    for (VertexId v = 0; v < n; ++v) flat[v] = dense_of[community[flat[v]]];
    if (level.size() <= 1) break;
  }

  // Dense relabel of the final assignment.
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (VertexId v = 0; v < n; ++v) {
    const auto [it, inserted] =
        remap.emplace(flat[v], static_cast<std::uint32_t>(remap.size()));
    result.community_of[v] = it->second;
  }
  result.count = static_cast<std::uint32_t>(remap.size());
  return result;
}

}  // namespace sntrust

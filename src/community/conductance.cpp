#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "community/community.hpp"
#include "util/rng.hpp"

namespace sntrust {

std::vector<double> fiedler_vector(const Graph& g,
                                   std::uint32_t max_iterations,
                                   std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  if (n < 2 || g.num_edges() == 0)
    throw std::invalid_argument("fiedler_vector: graph too small");

  // Second eigenvector of N = D^{-1/2} A D^{-1/2}. Power-iterate the shifted
  // operator (I + N)/2 (spectrum in [0, 1]) with the principal direction
  // phi = D^{1/2} 1 deflated; the dominant remaining eigenvector is the
  // Fiedler direction of the normalized Laplacian.
  std::vector<double> inv_sqrt_deg(n), phi(n);
  for (VertexId v = 0; v < n; ++v) {
    const double d = static_cast<double>(g.degree(v));
    inv_sqrt_deg[v] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
    phi[v] = std::sqrt(d);
  }
  {
    double norm = std::sqrt(std::inner_product(phi.begin(), phi.end(),
                                               phi.begin(), 0.0));
    for (double& x : phi) x /= norm;
  }

  Rng rng{seed};
  std::vector<double> x(n), y(n);
  for (double& value : x) value = rng.uniform_real() - 0.5;

  const auto deflate = [&](std::vector<double>& vec) {
    const double proj =
        std::inner_product(vec.begin(), vec.end(), phi.begin(), 0.0);
    for (VertexId v = 0; v < n; ++v) vec[v] -= proj * phi[v];
  };
  const auto normalize = [&](std::vector<double>& vec) {
    const double norm = std::sqrt(
        std::inner_product(vec.begin(), vec.end(), vec.begin(), 0.0));
    if (norm > 0.0)
      for (double& value : vec) value /= norm;
  };

  deflate(x);
  normalize(x);
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  for (std::uint32_t it = 0; it < max_iterations; ++it) {
    std::fill(y.begin(), y.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      const double xv = x[v] * inv_sqrt_deg[v];
      if (xv == 0.0) continue;
      for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e)
        y[targets[e]] += xv * inv_sqrt_deg[targets[e]];
    }
    for (VertexId v = 0; v < n; ++v) y[v] = 0.5 * (y[v] + x[v]);
    deflate(y);
    normalize(y);
    x.swap(y);
  }

  // Return in vertex space: u = D^{-1/2} x, the smooth labeling.
  std::vector<double> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = x[v] * inv_sqrt_deg[v];
  return out;
}

CheegerBounds cheeger_bounds(double lambda_2) {
  if (lambda_2 < -1.0 - 1e-12 || lambda_2 > 1.0 + 1e-12)
    throw std::invalid_argument("cheeger_bounds: lambda_2 must be in [-1,1]");
  CheegerBounds bounds;
  const double gap = std::max(0.0, 1.0 - lambda_2);
  bounds.lower = gap / 2.0;
  bounds.upper = std::sqrt(2.0 * gap);
  return bounds;
}

SweepResult conductance_sweep(const Graph& g,
                              const std::vector<double>& ordering_values) {
  const VertexId n = g.num_vertices();
  if (ordering_values.size() != n)
    throw std::invalid_argument("conductance_sweep: values size mismatch");
  if (n < 2 || g.num_edges() == 0)
    throw std::invalid_argument("conductance_sweep: graph too small");

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return ordering_values[a] < ordering_values[b];
  });

  const std::uint64_t total_volume = g.targets().size();  // 2m
  std::vector<std::uint8_t> in_set(n, 0);
  std::uint64_t cut = 0;
  std::uint64_t vol = 0;

  SweepResult result;
  result.curve.reserve(n - 1);
  for (VertexId i = 0; i + 1 < n; ++i) {
    const VertexId v = order[i];
    in_set[v] = 1;
    vol += g.degree(v);
    // Adding v flips each incident edge: to-inside edges leave the cut,
    // to-outside edges join it.
    for (const VertexId w : g.neighbors(v)) {
      if (in_set[w]) --cut;
      else ++cut;
    }
    const std::uint64_t vol_other = total_volume - vol;
    const double phi =
        static_cast<double>(cut) /
        static_cast<double>(std::max<std::uint64_t>(1, std::min(vol, vol_other)));
    result.curve.push_back(phi);
    if (vol > 0 && vol_other > 0 && phi < result.best_conductance) {
      result.best_conductance = phi;
      result.best_prefix = i + 1;
    }
  }
  return result;
}

}  // namespace sntrust

#include <algorithm>
#include <unordered_map>

#include "community/community.hpp"
#include "util/rng.hpp"

namespace sntrust {

std::vector<std::uint64_t> Partition::sizes() const {
  std::vector<std::uint64_t> out(count, 0);
  for (const std::uint32_t c : community_of) ++out[c];
  return out;
}

Partition label_propagation(const Graph& g,
                            const LabelPropagationOptions& options) {
  const VertexId n = g.num_vertices();
  Partition out;
  out.community_of.resize(n);
  for (VertexId v = 0; v < n; ++v) out.community_of[v] = v;
  if (n == 0) return out;

  Rng rng{options.seed};
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;

  std::unordered_map<std::uint32_t, std::uint32_t> counts;
  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    rng.shuffle(std::span<VertexId>{order});
    bool changed = false;
    for (const VertexId v : order) {
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) continue;
      counts.clear();
      for (const VertexId w : nbrs) ++counts[out.community_of[w]];
      // Most frequent neighbour label; ties broken toward keeping the
      // current label, then lowest label id (deterministic given order).
      std::uint32_t best_label = out.community_of[v];
      std::uint32_t best_count = counts.count(best_label) != 0
                                     ? counts[best_label]
                                     : 0;
      for (const auto& [label, count] : counts) {
        if (count > best_count ||
            (count == best_count && label < best_label)) {
          best_label = label;
          best_count = count;
        }
      }
      if (best_label != out.community_of[v]) {
        out.community_of[v] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Dense relabeling.
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (std::uint32_t& label : out.community_of) {
    const auto [it, inserted] =
        remap.emplace(label, static_cast<std::uint32_t>(remap.size()));
    label = it->second;
  }
  out.count = static_cast<std::uint32_t>(remap.size());
  return out;
}

}  // namespace sntrust

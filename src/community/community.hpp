// Community structure tooling (paper Sec. II discussion: Viswanath et al.
// showed walk-based Sybil defenses are sensitive to community structure and
// reduce to community detection around the trusted node).
//
// Provides: label propagation partitioning, modularity scoring, conductance,
// and a spectral (Fiedler-ordering) conductance sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// A partition of vertices into communities 0..count-1.
struct Partition {
  std::vector<std::uint32_t> community_of;
  std::uint32_t count = 0;

  /// Sizes per community.
  std::vector<std::uint64_t> sizes() const;
};

struct LabelPropagationOptions {
  std::uint32_t max_rounds = 50;
  std::uint64_t seed = 1;
};

/// Asynchronous label propagation; communities are relabeled densely.
Partition label_propagation(const Graph& g,
                            const LabelPropagationOptions& options = {});

/// Newman modularity of a partition: Q = sum_c (e_c/m - (d_c/2m)^2).
double modularity(const Graph& g, const Partition& partition);

/// Conductance of the cut (S, V \ S): cut(S) / min(vol(S), vol(V\S)).
/// `in_set[v]` marks membership of S. Throws if S or its complement is empty
/// or the graph has no edges.
double conductance(const Graph& g, const std::vector<std::uint8_t>& in_set);

/// Approximate Fiedler vector (second eigenvector of the normalized
/// Laplacian) by power iteration with deflation; returns per-vertex values.
std::vector<double> fiedler_vector(const Graph& g,
                                   std::uint32_t max_iterations = 1500,
                                   std::uint64_t seed = 7);

/// Sweep cut: order vertices by Fiedler value and return the minimum
/// conductance over all prefixes (the spectral partitioning heuristic).
struct SweepResult {
  double best_conductance = 1.0;
  std::uint64_t best_prefix = 0;     ///< |S| at the minimum
  std::vector<double> curve;         ///< conductance per prefix size
};
SweepResult conductance_sweep(const Graph& g,
                              const std::vector<double>& ordering_values);

struct LouvainOptions {
  std::uint32_t max_passes = 10;   ///< local-move passes per level
  std::uint32_t max_levels = 10;   ///< coarsening levels
  std::uint64_t seed = 1;
};

/// Louvain modularity optimization (local moves + graph coarsening),
/// returning the flat partition of the original vertices. Deterministic in
/// the seed (vertex visit order is shuffled per pass).
Partition louvain(const Graph& g, const LouvainOptions& options = {});

/// Cheeger's inequality: phi^2 / 2 <= 1 - lambda_2 <= 2 * phi, i.e. the
/// spectral gap brackets the conductance. Given a measured lambda_2 (of the
/// normalized adjacency), returns the implied [lower, upper] bounds on the
/// graph's conductance — the bridge between the paper's spectral (Table I)
/// and community (Sec. V) views.
struct CheegerBounds {
  double lower = 0.0;  ///< (1 - lambda_2) / 2
  double upper = 1.0;  ///< sqrt(2 * (1 - lambda_2))
};
/// Preconditions: lambda_2 in [-1, 1].
CheegerBounds cheeger_bounds(double lambda_2);

}  // namespace sntrust

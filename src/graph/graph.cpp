#include "graph/graph.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <string>

#include "graph/layout.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

/// Backing store for graphs built from vectors.
struct VectorStorage {
  std::vector<EdgeIndex> offsets;
  std::vector<VertexId> targets;
};

/// offsets() of the default-constructed empty graph.
constexpr EdgeIndex kEmptyOffsets[1] = {0};

}  // namespace

/// Per-graph cache block, shared by all copies of a Graph: the structural
/// fingerprint and one layout engine slot per GraphLayout. Guarded by its
/// own mutex; builds happen once per graph, not once per sweep worker.
struct GraphAux {
  std::mutex mutex;
  bool fingerprint_set = false;
  std::uint64_t fingerprint = 0;
  std::shared_ptr<const LayoutData> layouts[3];
};

Graph::Graph()
    : offsets_(kEmptyOffsets, 1),
      targets_(),
      aux_(std::make_shared<GraphAux>()) {}

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets) {
  auto storage = std::make_shared<VectorStorage>();
  storage->offsets = std::move(offsets);
  storage->targets = std::move(targets);
  offsets_ = storage->offsets;
  targets_ = storage->targets;
  storage_ = std::move(storage);
  aux_ = std::make_shared<GraphAux>();
  validate_header();
  validate();
}

Graph::Graph(std::span<const EdgeIndex> offsets,
             std::span<const VertexId> targets,
             std::shared_ptr<const void> storage, bool deep_validate)
    : offsets_(offsets),
      targets_(targets),
      storage_(std::move(storage)),
      aux_(std::make_shared<GraphAux>()) {
  validate_header();
  if (deep_validate) validate();
}

Graph Graph::adopt(std::span<const EdgeIndex> offsets,
                   std::span<const VertexId> targets,
                   std::shared_ptr<const void> keepalive, bool deep_validate) {
  return Graph{offsets, targets, std::move(keepalive), deep_validate};
}

void Graph::check_vertex(VertexId v) const {
  if (v >= num_vertices())
    throw std::out_of_range("Graph: vertex " + std::to_string(v) +
                            " out of range (n=" +
                            std::to_string(num_vertices()) + ")");
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  check_vertex(v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u)
    for (VertexId v : neighbors_unchecked(u))
      if (u < v) out.push_back({u, v});
  return out;
}

bool operator==(const Graph& a, const Graph& b) {
  return std::ranges::equal(a.offsets_, b.offsets_) &&
         std::ranges::equal(a.targets_, b.targets_);
}

std::uint64_t Graph::fingerprint() const {
  if (const std::optional<std::uint64_t> cached = cached_fingerprint())
    return *cached;
  // Identical chain to the pre-existing exec::graph_fingerprint, so
  // checkpoints written before the cache existed still match.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  h = stream_seed(h, offsets_.size());
  h = stream_seed(h, targets_.size());
  for (const EdgeIndex offset : offsets_) h = stream_seed(h, offset);
  for (const VertexId target : targets_) h = stream_seed(h, target);
  set_cached_fingerprint(h);
  return h;
}

std::optional<std::uint64_t> Graph::cached_fingerprint() const {
  std::lock_guard<std::mutex> lock(aux_->mutex);
  if (!aux_->fingerprint_set) return std::nullopt;
  return aux_->fingerprint;
}

void Graph::set_cached_fingerprint(std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(aux_->mutex);
  aux_->fingerprint_set = true;
  aux_->fingerprint = fingerprint;
}

std::shared_ptr<const LayoutData> Graph::layout(GraphLayout which) const {
  if (which == GraphLayout::kPlain) return nullptr;
  const int slot = static_cast<int>(which);
  {
    std::lock_guard<std::mutex> lock(aux_->mutex);
    if (aux_->layouts[slot]) return aux_->layouts[slot];
  }
  // Build outside the lock (it is O(n log n + m)); a concurrent duplicate
  // build is harmless — first writer wins, both results are identical.
  std::shared_ptr<const LayoutData> built = LayoutData::build(*this, which);
  std::lock_guard<std::mutex> lock(aux_->mutex);
  if (!aux_->layouts[slot]) aux_->layouts[slot] = std::move(built);
  return aux_->layouts[slot];
}

void Graph::validate_header() const {
  if (offsets_.empty())
    throw std::invalid_argument("Graph: offsets must have >= 1 entry");
  if (offsets_.front() != 0)
    throw std::invalid_argument("Graph: offsets[0] must be 0");
  if (offsets_.back() != targets_.size())
    throw std::invalid_argument("Graph: offsets must end at targets.size()");
  if (targets_.size() % 2 != 0)
    throw std::invalid_argument("Graph: directed half-edge count must be even");
}

void Graph::validate() const {
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1])
      throw std::invalid_argument("Graph: offsets must be non-decreasing");
    VertexId prev = 0;
    bool first = true;
    for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      const VertexId t = targets_[i];
      if (t >= n)
        throw std::invalid_argument("Graph: neighbour id out of range");
      if (t == v) throw std::invalid_argument("Graph: self loop at vertex " +
                                              std::to_string(v));
      if (!first && t <= prev)
        throw std::invalid_argument(
            "Graph: adjacency of vertex " + std::to_string(v) +
            " not strictly sorted (duplicate or unsorted neighbour)");
      prev = t;
      first = false;
    }
  }
  // Symmetry: every (v -> t) must have a matching (t -> v). Count-based
  // check is O(m log deg): binary search the reverse edge.
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      const VertexId t = targets_[i];
      const VertexId* lo = targets_.data() + offsets_[t];
      const VertexId* hi = targets_.data() + offsets_[t + 1];
      if (!std::binary_search(lo, hi, v))
        throw std::invalid_argument("Graph: adjacency not symmetric for edge " +
                                    std::to_string(v) + "-" + std::to_string(t));
    }
  }
}

}  // namespace sntrust

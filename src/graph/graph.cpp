#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sntrust {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  validate();
}

void Graph::check_vertex(VertexId v) const {
  if (v >= num_vertices())
    throw std::out_of_range("Graph: vertex " + std::to_string(v) +
                            " out of range (n=" +
                            std::to_string(num_vertices()) + ")");
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  check_vertex(v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u)
    for (VertexId v : neighbors(u))
      if (u < v) out.push_back({u, v});
  return out;
}

void Graph::validate() const {
  if (offsets_.empty())
    throw std::invalid_argument("Graph: offsets must have >= 1 entry");
  if (offsets_.front() != 0)
    throw std::invalid_argument("Graph: offsets[0] must be 0");
  if (offsets_.back() != targets_.size())
    throw std::invalid_argument("Graph: offsets must end at targets.size()");
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1])
      throw std::invalid_argument("Graph: offsets must be non-decreasing");
    VertexId prev = 0;
    bool first = true;
    for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      const VertexId t = targets_[i];
      if (t >= n)
        throw std::invalid_argument("Graph: neighbour id out of range");
      if (t == v) throw std::invalid_argument("Graph: self loop at vertex " +
                                              std::to_string(v));
      if (!first && t <= prev)
        throw std::invalid_argument(
            "Graph: adjacency of vertex " + std::to_string(v) +
            " not strictly sorted (duplicate or unsorted neighbour)");
      prev = t;
      first = false;
    }
  }
  if (targets_.size() % 2 != 0)
    throw std::invalid_argument("Graph: directed half-edge count must be even");
  // Symmetry: every (v -> t) must have a matching (t -> v). Count-based
  // check is O(m log deg): binary search the reverse edge.
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      const VertexId t = targets_[i];
      const VertexId* lo = targets_.data() + offsets_[t];
      const VertexId* hi = targets_.data() + offsets_[t + 1];
      if (!std::binary_search(lo, hi, v))
        throw std::invalid_argument("Graph: adjacency not symmetric for edge " +
                                    std::to_string(v) + "-" + std::to_string(t));
    }
  }
}

}  // namespace sntrust

#include "graph/stats.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/traversal.hpp"

namespace sntrust {

DegreeStats degree_stats(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("degree_stats: empty graph");
  DegreeStats out;
  std::vector<VertexId> degrees(n);
  for (VertexId v = 0; v < n; ++v) degrees[v] = g.degree_unchecked(v);
  out.min = *std::min_element(degrees.begin(), degrees.end());
  out.max = *std::max_element(degrees.begin(), degrees.end());
  out.mean = 2.0 * static_cast<double>(g.num_edges()) / n;
  std::vector<VertexId> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  out.median = n % 2 == 1 ? sorted[n / 2]
                          : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
  out.histogram.assign(static_cast<std::size_t>(out.max) + 1, 0);
  for (const VertexId d : degrees) ++out.histogram[d];
  return out;
}

namespace {

/// Counts triangles incident on each ordered wedge using sorted-adjacency
/// intersection restricted to higher-id neighbours.
std::uint64_t count_triangles(const Graph& g) {
  std::uint64_t triangles = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors_unchecked(u);
    for (const VertexId v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors_unchecked(v);
      // Intersect neighbours of u and v that are > v: each match closes a
      // triangle u < v < w counted exactly once.
      auto iu = std::upper_bound(nu.begin(), nu.end(), v);
      auto iv = std::upper_bound(nv.begin(), nv.end(), v);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) ++iu;
        else if (*iv < *iu) ++iv;
        else { ++triangles; ++iu; ++iv; }
      }
    }
  }
  return triangles;
}

std::uint64_t count_wedges(const Graph& g) {
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree_unchecked(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

}  // namespace

double global_clustering_coefficient(const Graph& g) {
  const std::uint64_t wedges = count_wedges(g);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles(g)) /
         static_cast<double>(wedges);
}

double average_local_clustering(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors_unchecked(v);
    const std::size_t d = nbrs.size();
    if (d < 2) continue;
    std::uint64_t links = 0;
    for (std::size_t i = 0; i < d; ++i) {
      const auto ni = g.neighbors_unchecked(nbrs[i]);
      for (std::size_t j = i + 1; j < d; ++j)
        if (std::binary_search(ni.begin(), ni.end(), nbrs[j])) ++links;
    }
    total += 2.0 * static_cast<double>(links) /
             (static_cast<double>(d) * (static_cast<double>(d) - 1.0));
  }
  return total / n;
}

double degree_assortativity(const Graph& g) {
  // Newman's formulation over directed edge endpoints (each undirected edge
  // contributes both orientations):
  //   r = [M^-1 sum j_i k_i - (M^-1 sum (j_i + k_i)/2)^2]
  //       / [M^-1 sum (j_i^2 + k_i^2)/2 - (M^-1 sum (j_i + k_i)/2)^2]
  if (g.num_edges() == 0) return 0.0;
  double sum_products = 0.0;
  double sum_half = 0.0;
  double sum_half_squares = 0.0;
  std::uint64_t m = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const double du = g.degree_unchecked(u);
    for (const VertexId w : g.neighbors(u)) {
      if (w <= u) continue;
      const double dw = g.degree_unchecked(w);
      sum_products += du * dw;
      sum_half += 0.5 * (du + dw);
      sum_half_squares += 0.5 * (du * du + dw * dw);
      ++m;
    }
  }
  const double inv = 1.0 / static_cast<double>(m);
  const double mean = inv * sum_half;
  const double numerator = inv * sum_products - mean * mean;
  const double denominator = inv * sum_half_squares - mean * mean;
  return denominator == 0.0 ? 0.0 : numerator / denominator;
}

std::uint32_t double_sweep_diameter(const Graph& g, VertexId hint) {
  if (g.num_vertices() == 0) return 0;
  BfsRunner runner{g};
  const BfsResult& first = runner.run(hint);
  // Farthest reached vertex from the hint.
  VertexId far = hint;
  std::uint32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = first.distances[v];
    if (d != kUnreachable && d > best) { best = d; far = v; }
  }
  const BfsResult& second = runner.run(far);
  return std::max(best, second.eccentricity);
}

}  // namespace sntrust

#include "graph/io.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "exec/fault.hpp"
#include "graph/builder.hpp"
#include "graph/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sntrust {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x534e545255535431ULL;  // "SNTRUST1"

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in, const std::string& path) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw IoError("binary graph: truncated file " + path);
  return value;
}

/// Parses one vertex-id token: digits only (a leading '-' is a malformed
/// line, not a wrapped-around huge id), rejecting values that overflow 64
/// bits. Every diagnostic carries the 1-based line number.
std::uint64_t parse_vertex_id(const std::string& token, std::size_t line_no) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos)
    throw IoError("edge list: malformed vertex id '" + token + "' at line " +
                  std::to_string(line_no));
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size())
    throw IoError("edge list: vertex id '" + token +
                  "' overflows 64 bits at line " + std::to_string(line_no));
  return value;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  const obs::Span span{"io.read_edge_list", "io"};
  std::unordered_map<std::uint64_t, VertexId> id_map;
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::string line;
  std::size_t line_no = 0;
  const auto intern = [&](std::uint64_t raw) {
    if (id_map.size() >=
        static_cast<std::size_t>(std::numeric_limits<VertexId>::max()))
      throw IoError("edge list: more than " +
                    std::to_string(std::numeric_limits<VertexId>::max()) +
                    " distinct vertices at line " + std::to_string(line_no));
    auto [it, inserted] =
        id_map.emplace(raw, static_cast<VertexId>(id_map.size()));
    return it->second;
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    exec::fault_point("io", line_no);
    std::istringstream fields{line};
    std::string a, b;
    if (!(fields >> a >> b))  // trailing fields beyond the pair are ignored
      throw IoError("edge list: malformed line " + std::to_string(line_no) +
                    ": '" + line + "'");
    edges.emplace_back(intern(parse_vertex_id(a, line_no)),
                       intern(parse_vertex_id(b, line_no)));
  }
  obs::count("io.lines_read", line_no);
  obs::count("io.edges_read", edges.size());
  GraphBuilder builder{static_cast<VertexId>(id_map.size())};
  builder.reserve(edges.size());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw IoError("cannot open edge list: " + path);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  const obs::Span span{"io.write_edge_list", "io"};
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) out << u << ' ' << v << '\n';
  obs::count("io.edges_written", g.num_edges());
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw IoError("cannot open for writing: " + path);
  write_edge_list(g, out);
  if (!out) throw IoError("write failed: " + path);
}

void write_binary_file(const Graph& g, const std::string& path) {
  const obs::Span span{"io.write_binary", "io"};
  std::ofstream out{path, std::ios::binary};
  if (!out) throw IoError("cannot open for writing: " + path);
  write_pod(out, kBinaryMagic);
  write_pod(out, static_cast<std::uint64_t>(g.num_vertices()));
  write_pod(out, static_cast<std::uint64_t>(g.targets().size()));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() *
                                         sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(g.targets().data()),
            static_cast<std::streamsize>(g.targets().size() *
                                         sizeof(VertexId)));
  if (!out) throw IoError("write failed: " + path);
}

Graph read_binary_file(const std::string& path) {
  const obs::Span span{"io.read_binary", "io"};
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  if (!in) throw IoError("cannot open binary graph: " + path);
  const std::streamoff file_size = in.tellg();
  in.seekg(0);
  exec::fault_point("io", static_cast<std::uint64_t>(file_size));
  if (read_pod<std::uint64_t>(in, path) != kBinaryMagic)
    throw IoError("binary graph: bad magic in " + path);
  const auto n = read_pod<std::uint64_t>(in, path);
  const auto half_edges = read_pod<std::uint64_t>(in, path);
  // Validate the header against the actual byte count before allocating
  // anything: a corrupt or truncated header must fail cleanly, not request
  // hundreds of gigabytes.
  if (n > std::numeric_limits<VertexId>::max())
    throw IoError("binary graph: vertex count " + std::to_string(n) +
                  " overflows the 32-bit vertex id space in " + path);
  const std::uint64_t payload =
      static_cast<std::uint64_t>(file_size) - 3 * sizeof(std::uint64_t);
  const std::uint64_t expected =
      (n + 1) * sizeof(EdgeIndex) + half_edges * sizeof(VertexId);
  if (file_size < static_cast<std::streamoff>(3 * sizeof(std::uint64_t)) ||
      payload != expected)
    throw IoError("binary graph: header (n=" + std::to_string(n) +
                  ", half_edges=" + std::to_string(half_edges) +
                  ") expects " + std::to_string(expected) +
                  " payload bytes but file has " + std::to_string(payload) +
                  ": " + path);
  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> targets(half_edges);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeIndex)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(VertexId)));
  if (!in) throw IoError("binary graph: truncated file " + path);
  return Graph{std::move(offsets), std::move(targets)};  // validates
}

Graph read_graph_auto(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw IoError("cannot open graph: " + path);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.close();
  if (in.gcount() == sizeof magic) {
    if (magic == kSnapshotMagic) return load_snapshot(path);
    if (magic == kBinaryMagic) return read_binary_file(path);
  }
  return read_edge_list_file(path);
}

}  // namespace sntrust

#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sntrust {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x534e545255535431ULL;  // "SNTRUST1"

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("binary graph: truncated file");
  return value;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  const obs::Span span{"io.read_edge_list", "io"};
  std::unordered_map<std::uint64_t, VertexId> id_map;
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::string line;
  const auto intern = [&](std::uint64_t raw) {
    auto [it, inserted] =
        id_map.emplace(raw, static_cast<VertexId>(id_map.size()));
    return it->second;
  };
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields{line};
    std::uint64_t a = 0, b = 0;
    if (!(fields >> a >> b))
      throw std::runtime_error("edge list: malformed line " +
                               std::to_string(line_no) + ": '" + line + "'");
    edges.emplace_back(intern(a), intern(b));
  }
  obs::count("io.lines_read", line_no);
  obs::count("io.edges_read", edges.size());
  GraphBuilder builder{static_cast<VertexId>(id_map.size())};
  builder.reserve(edges.size());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  const obs::Span span{"io.write_edge_list", "io"};
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) out << u << ' ' << v << '\n';
  obs::count("io.edges_written", g.num_edges());
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_edge_list(g, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

void write_binary_file(const Graph& g, const std::string& path) {
  const obs::Span span{"io.write_binary", "io"};
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_pod(out, kBinaryMagic);
  write_pod(out, static_cast<std::uint64_t>(g.num_vertices()));
  write_pod(out, static_cast<std::uint64_t>(g.targets().size()));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() *
                                         sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(g.targets().data()),
            static_cast<std::streamsize>(g.targets().size() *
                                         sizeof(VertexId)));
  if (!out) throw std::runtime_error("write failed: " + path);
}

Graph read_binary_file(const std::string& path) {
  const obs::Span span{"io.read_binary", "io"};
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("cannot open binary graph: " + path);
  if (read_pod<std::uint64_t>(in) != kBinaryMagic)
    throw std::runtime_error("binary graph: bad magic in " + path);
  const auto n = read_pod<std::uint64_t>(in);
  const auto half_edges = read_pod<std::uint64_t>(in);
  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> targets(half_edges);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeIndex)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(VertexId)));
  if (!in) throw std::runtime_error("binary graph: truncated file " + path);
  return Graph{std::move(offsets), std::move(targets)};  // validates
}

}  // namespace sntrust

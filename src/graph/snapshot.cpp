#include "graph/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <vector>

#include "exec/fault.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SNTRUST_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sntrust {

namespace {

constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kHeaderCrcOffset = 44;

/// CRC-32 (IEEE, reflected) over raw bytes — table-identical to
/// exec::crc32, but streaming over a pointer range so multi-GB payloads
/// never get copied into a std::string.
std::uint32_t crc32_bytes(const std::uint8_t* data, std::size_t size,
                          std::uint32_t seed = 0xffffffffu) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc & 1u) ? (0xedb88320u ^ (crc >> 1)) : (crc >> 1);
      t[i] = crc;
    }
    return t;
  }();
  std::uint32_t crc = seed;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

template <typename T>
void put_pod(std::uint8_t* base, std::size_t offset, T value) {
  std::memcpy(base + offset, &value, sizeof value);
}

template <typename T>
T get_pod(const std::uint8_t* base, std::size_t offset) {
  T value;
  std::memcpy(&value, base + offset, sizeof value);
  return value;
}

struct ParsedHeader {
  SnapshotInfo info;
  std::uint64_t payload_bytes = 0;
};

/// Validates the 64-byte header against the actual file size. Throws
/// IoError on any mismatch — before anything is allocated or mapped.
ParsedHeader parse_header(const std::uint8_t* header, std::uint64_t file_size,
                          const std::string& path) {
  if (file_size < kHeaderBytes)
    throw IoError("snapshot: file shorter than its header: " + path);
  if (get_pod<std::uint64_t>(header, 0) != kSnapshotMagic)
    throw IoError("snapshot: bad magic in " + path);
  const auto endian = get_pod<std::uint32_t>(header, 12);
  if (endian != kEndianTag)
    throw IoError("snapshot: foreign byte order (endian tag " +
                  std::to_string(endian) + ") in " + path);
  const std::uint32_t stored_header_crc =
      get_pod<std::uint32_t>(header, kHeaderCrcOffset);
  std::uint8_t scratch[kHeaderBytes];
  std::memcpy(scratch, header, kHeaderCrcOffset);
  if (crc32_bytes(scratch, kHeaderCrcOffset) != stored_header_crc)
    throw IoError("snapshot: header CRC mismatch in " + path);

  ParsedHeader parsed;
  parsed.info.version = get_pod<std::uint32_t>(header, 8);
  if (parsed.info.version != kSnapshotVersion)
    throw IoError("snapshot: unsupported version " +
                  std::to_string(parsed.info.version) + " in " + path);
  parsed.info.num_vertices = get_pod<std::uint64_t>(header, 16);
  parsed.info.half_edges = get_pod<std::uint64_t>(header, 24);
  parsed.info.fingerprint = get_pod<std::uint64_t>(header, 32);
  parsed.info.payload_crc = get_pod<std::uint32_t>(header, 40);
  parsed.info.file_bytes = file_size;

  const std::uint64_t n = parsed.info.num_vertices;
  if (n > std::numeric_limits<VertexId>::max())
    throw IoError("snapshot: vertex count " + std::to_string(n) +
                  " overflows the 32-bit vertex id space in " + path);
  if (parsed.info.half_edges % 2 != 0)
    throw IoError("snapshot: odd half-edge count in " + path);
  parsed.payload_bytes = (n + 1) * sizeof(EdgeIndex) +
                         parsed.info.half_edges * sizeof(VertexId);
  if (file_size != kHeaderBytes + parsed.payload_bytes)
    throw IoError("snapshot: header (n=" + std::to_string(n) + ", half_edges=" +
                  std::to_string(parsed.info.half_edges) + ") expects " +
                  std::to_string(kHeaderBytes + parsed.payload_bytes) +
                  " bytes but file has " + std::to_string(file_size) + ": " +
                  path);
  return parsed;
}

/// Read-only file mapping (heap-buffer fallback off unix); doubles as the
/// Graph keepalive so the mapping outlives every copy of the graph.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
#ifdef SNTRUST_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw IoError("cannot open snapshot: " + path);
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      throw IoError("cannot stat snapshot: " + path);
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (size_ > 0) {
      void* mapped =
          ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
      if (mapped == MAP_FAILED) {
        ::close(fd);
        throw IoError("cannot mmap snapshot: " + path);
      }
      data_ = static_cast<const std::uint8_t*>(mapped);
    }
    ::close(fd);
#else
    std::ifstream in{path, std::ios::binary | std::ios::ate};
    if (!in) throw IoError("cannot open snapshot: " + path);
    size_ = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    buffer_.resize(size_);
    in.read(reinterpret_cast<char*>(buffer_.data()),
            static_cast<std::streamsize>(size_));
    if (!in) throw IoError("snapshot: truncated file " + path);
    data_ = buffer_.data();
#endif
  }

  ~MappedFile() {
#ifdef SNTRUST_HAVE_MMAP
    if (data_ != nullptr) ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const noexcept { return data_; }
  std::uint64_t size() const noexcept { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
#ifndef SNTRUST_HAVE_MMAP
  std::vector<std::uint8_t> buffer_;
#endif
};

bool payload_verify_default() {
  return env_bool("SNTRUST_SNAPSHOT_VERIFY", false);
}

}  // namespace

void write_snapshot(const Graph& g, const std::string& path) {
  const obs::Span span{"io.write_snapshot", "io"};
  const auto offsets = g.offsets();
  const auto targets = g.targets();

  std::uint8_t header[kHeaderBytes] = {};
  put_pod(header, 0, kSnapshotMagic);
  put_pod(header, 8, kSnapshotVersion);
  put_pod(header, 12, kEndianTag);
  put_pod(header, 16, static_cast<std::uint64_t>(g.num_vertices()));
  put_pod(header, 24, static_cast<std::uint64_t>(targets.size()));
  put_pod(header, 32, g.fingerprint());

  // Payload CRC streamed across both arrays without materializing them.
  std::uint32_t crc =
      crc32_bytes(reinterpret_cast<const std::uint8_t*>(offsets.data()),
                  offsets.size_bytes());
  crc = crc32_bytes(reinterpret_cast<const std::uint8_t*>(targets.data()),
                    targets.size_bytes(), crc ^ 0xffffffffu);
  put_pod(header, 40, crc);
  put_pod(header, kHeaderCrcOffset, crc32_bytes(header, kHeaderCrcOffset));

  // Atomic publish: temp file + fsync + rename, mirroring exec/checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw IoError("cannot open for writing: " + tmp);
    out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
    out.write(reinterpret_cast<const char*>(offsets.data()),
              static_cast<std::streamsize>(offsets.size_bytes()));
    out.write(reinterpret_cast<const char*>(targets.data()),
              static_cast<std::streamsize>(targets.size_bytes()));
    if (!out) throw IoError("write failed: " + tmp);
  }
#ifdef SNTRUST_HAVE_MMAP
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw IoError("cannot rename " + tmp + " to " + path);
  obs::count("io.snapshots_written", 1);
}

Graph load_snapshot(const std::string& path, VerifyPayload verify) {
  const obs::Span span{"io.load_snapshot", "io"};
  auto mapping = std::make_shared<MappedFile>(path);
  exec::fault_point("io", mapping->size());
  const ParsedHeader parsed =
      parse_header(mapping->data(), mapping->size(), path);

  const bool full_verify = verify == VerifyPayload::kFull ||
                           (verify == VerifyPayload::kAuto &&
                            payload_verify_default());
  if (full_verify &&
      crc32_bytes(mapping->data() + kHeaderBytes, parsed.payload_bytes) !=
          parsed.info.payload_crc)
    throw IoError("snapshot: payload CRC mismatch in " + path);

  const auto* offsets_ptr =
      reinterpret_cast<const EdgeIndex*>(mapping->data() + kHeaderBytes);
  const auto* targets_ptr = reinterpret_cast<const VertexId*>(
      mapping->data() + kHeaderBytes +
      (parsed.info.num_vertices + 1) * sizeof(EdgeIndex));
  const std::uint64_t stored_fingerprint = parsed.info.fingerprint;
  Graph g = Graph::adopt(
      {offsets_ptr, static_cast<std::size_t>(parsed.info.num_vertices + 1)},
      {targets_ptr, static_cast<std::size_t>(parsed.info.half_edges)},
      std::move(mapping), /*deep_validate=*/false);
  g.set_cached_fingerprint(stored_fingerprint);
  obs::count("io.snapshots_loaded", 1);
  return g;
}

SnapshotInfo snapshot_info(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  if (!in) throw IoError("cannot open snapshot: " + path);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::uint8_t header[kHeaderBytes] = {};
  in.read(reinterpret_cast<char*>(header),
          static_cast<std::streamsize>(
              std::min<std::uint64_t>(kHeaderBytes, file_size)));
  return parse_header(header, file_size, path).info;
}

bool is_snapshot_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  return in && magic == kSnapshotMagic;
}

}  // namespace sntrust

// Edge-list serialization.
//
// Text format is the SNAP-style whitespace-separated "u v" per line with
// '#' comments, so real datasets (the Table-I graphs, if available) can be
// loaded directly in place of the synthetic analogues. A compact binary
// format is provided for caching generated graphs between bench runs.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace sntrust {

/// Parses a text edge list. Vertex ids may be arbitrary (sparse) integers;
/// they are remapped densely in first-appearance order. Self loops and
/// duplicate edges are dropped. Throws std::runtime_error on parse errors.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Writes "u v" lines, one per undirected edge (u < v).
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Binary CSR snapshot (magic + n + m + offsets + targets, little-endian).
void write_binary_file(const Graph& g, const std::string& path);
/// Loads a binary snapshot; throws std::runtime_error on malformed files.
Graph read_binary_file(const std::string& path);

}  // namespace sntrust

// Edge-list serialization.
//
// Text format is the SNAP-style whitespace-separated "u v" per line with
// '#' comments, so real datasets (the Table-I graphs, if available) can be
// loaded directly in place of the synthetic analogues. A compact binary
// format is provided for caching generated graphs between bench runs.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace sntrust {

/// Input-format failure: unopenable files, malformed edge-list lines (with
/// the 1-based line number), vertex-id overflow, and binary snapshots whose
/// header disagrees with the file size. Derives std::runtime_error so
/// pre-existing catch sites keep working; the CLI maps it to exit code 65
/// (bad input) rather than 1 (internal error).
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses a text edge list. Vertex ids are non-negative integers, may be
/// arbitrary (sparse), and are remapped densely in first-appearance order;
/// fields after the first two on a line are ignored. Self loops and
/// duplicate edges are dropped. Throws IoError (with a line number) on
/// malformed lines, negative ids, or ids that overflow 64 bits.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Writes "u v" lines, one per undirected edge (u < v).
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Binary CSR snapshot (magic + n + m + offsets + targets, little-endian).
void write_binary_file(const Graph& g, const std::string& path);
/// Loads a binary snapshot; throws IoError on malformed files. The header
/// counts are validated against the actual file size *before* any array is
/// allocated, so a corrupt header cannot trigger a huge allocation.
Graph read_binary_file(const std::string& path);

/// Loads a graph from any supported on-disk format, sniffed by magic:
/// mmap snapshot (graph/snapshot.hpp), binary CSR, else text edge list.
Graph read_graph_auto(const std::string& path);

}  // namespace sntrust

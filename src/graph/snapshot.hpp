// Zero-copy memory-mapped graph snapshots.
//
// A snapshot is the CSR of a validated Graph laid out so the file can be
// mmap'd read-only and adopted in place (Graph::adopt): a 64-byte header,
// then the offsets array ((n+1) x u64) at a 64-byte-aligned position, then
// the targets array (2m x u32). Loading a multi-GB graph is therefore a
// handful of syscalls — milliseconds instead of re-parsing — and concurrent
// processes (the 8 benches, the CI perf-smoke job) share one page-cache
// copy of the adjacency.
//
// Format v1 (all fields little-endian; big-endian hosts are rejected at
// both ends rather than byte-swapped):
//
//   [ 0) magic     u64  "SNTRSNP1"
//   [ 8) version   u32  1
//   [12) endian    u32  0x01020304 as written by the producer
//   [16) n         u64
//   [24) halfedges u64  2m
//   [32) fingerprint u64  Graph::fingerprint() of the contents
//   [40) payload_crc u32  CRC-32 (IEEE) of the payload region
//   [44) header_crc  u32  CRC-32 of bytes [0, 44)
//   [48) reserved  u64 x 2, zero
//   [64) payload: offsets, then targets
//
// Integrity: the header CRC is always verified, and the header's implied
// payload size must match the file exactly — truncation and header
// corruption are rejected up front via IoError. The payload CRC makes any
// byte flip detectable, but hashing gigabytes would defeat the
// milliseconds-load contract, so it is verified on demand: by
// `sntrust_snapshot verify`, when VerifyPayload::kFull is requested, or
// when SNTRUST_SNAPSHOT_VERIFY=1. The stored fingerprint seeds the graph's
// fingerprint cache, so exec/ checkpoints resume identically whether the
// graph was parsed or mapped.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace sntrust {

inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Leading magic ("SNTRSNP1" as a little-endian u64) — distinct from the
/// binary CSR magic, so read_graph_auto can sniff the format.
inline constexpr std::uint64_t kSnapshotMagic = 0x31504e5352544e53ULL;

/// Parsed snapshot header (also returned by snapshot_info for tooling).
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t half_edges = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t payload_crc = 0;
  std::uint64_t file_bytes = 0;
};

enum class VerifyPayload {
  kAuto,  ///< SNTRUST_SNAPSHOT_VERIFY (default off: trust the header CRC)
  kSkip,
  kFull,  ///< CRC the whole payload before adopting it
};

/// Writes `g` as a snapshot via temp file + fsync + rename (never leaves a
/// torn file). Throws IoError on I/O failure.
void write_snapshot(const Graph& g, const std::string& path);

/// Maps `path` read-only and adopts the CSR in place (falls back to a heap
/// read where mmap is unavailable). Throws IoError on malformed, truncated,
/// corrupted, foreign-endian, or unknown-version snapshots.
Graph load_snapshot(const std::string& path,
                    VerifyPayload verify = VerifyPayload::kAuto);

/// Reads and validates only the header. Throws IoError as load_snapshot.
SnapshotInfo snapshot_info(const std::string& path);

/// True when the file starts with the snapshot magic (cheap sniff; false
/// for unreadable or short files).
bool is_snapshot_file(const std::string& path);

}  // namespace sntrust

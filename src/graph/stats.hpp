// Whole-graph summary statistics used in dataset reports and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

struct DegreeStats {
  VertexId min = 0;
  VertexId max = 0;
  double mean = 0.0;
  double median = 0.0;
  /// histogram[d] = number of vertices with degree d (length max+1).
  std::vector<std::uint64_t> histogram;
};

/// Degree distribution summary. Defined for non-empty graphs.
DegreeStats degree_stats(const Graph& g);

/// Global clustering coefficient: 3 * triangles / wedges (0 when no wedges).
/// Exact triangle counting via sorted-adjacency intersections, O(m^{3/2})-ish.
double global_clustering_coefficient(const Graph& g);

/// Average local clustering coefficient (Watts-Strogatz definition);
/// vertices of degree < 2 contribute 0.
double average_local_clustering(const Graph& g);

/// Lower bound on the diameter via the standard double-sweep heuristic
/// (BFS from `hint`, then BFS from the farthest vertex found). Exact on
/// trees; a tight lower bound in practice on social graphs.
std::uint32_t double_sweep_diameter(const Graph& g, VertexId hint = 0);

/// Degree assortativity (Newman's r): Pearson correlation of the degrees at
/// the two ends of an edge, in [-1, 1]. Social graphs are typically
/// assortative (r > 0); interaction graphs with hubs disassortative.
/// Returns 0 when degenerate (all degrees equal or no edges).
double degree_assortativity(const Graph& g);

}  // namespace sntrust

#include "graph/traversal.hpp"

#include <stdexcept>

namespace sntrust {

BfsResult bfs(const Graph& g, VertexId source) {
  BfsRunner runner{g};
  return runner.run(source);  // copies via NRVO of the stored result
}

BfsRunner::BfsRunner(const Graph& g)
    : graph_(g), epoch_seen_(g.num_vertices(), 0) {
  queue_.reserve(g.num_vertices());
  result_.distances.assign(g.num_vertices(), kUnreachable);
}

const BfsResult& BfsRunner::run(VertexId source) {
  if (source >= graph_.num_vertices())
    throw std::out_of_range("BfsRunner::run: source out of range");
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: clear markers and restart epochs
    std::fill(epoch_seen_.begin(), epoch_seen_.end(), 0);
    epoch_ = 1;
  }

  result_.source = source;
  result_.level_sizes.clear();
  result_.reached = 0;

  const auto& offsets = graph_.offsets();
  const auto& targets = graph_.targets();

  queue_.clear();
  queue_.push_back(source);
  epoch_seen_[source] = epoch_;
  result_.distances[source] = 0;

  std::size_t level_begin = 0;
  std::uint32_t depth = 0;
  while (level_begin < queue_.size()) {
    const std::size_t level_end = queue_.size();
    result_.level_sizes.push_back(level_end - level_begin);
    for (std::size_t qi = level_begin; qi < level_end; ++qi) {
      const VertexId u = queue_[qi];
      for (EdgeIndex i = offsets[u]; i < offsets[u + 1]; ++i) {
        const VertexId w = targets[i];
        if (epoch_seen_[w] != epoch_) {
          epoch_seen_[w] = epoch_;
          result_.distances[w] = depth + 1;
          queue_.push_back(w);
        }
      }
    }
    level_begin = level_end;
    ++depth;
  }

  result_.reached = queue_.size();
  result_.eccentricity =
      static_cast<std::uint32_t>(result_.level_sizes.size() - 1);
  // Mark unreached vertices lazily: distances[] still holds stale values from
  // previous runs for them, so fix them up only for callers that read the
  // whole array. Cheap single pass.
  for (VertexId v = 0; v < graph_.num_vertices(); ++v)
    if (epoch_seen_[v] != epoch_) result_.distances[v] = kUnreachable;
  return result_;
}

}  // namespace sntrust

#include "graph/traversal.hpp"

#include "graph/frontier_bfs.hpp"

namespace sntrust {

BfsResult bfs(const Graph& g, VertexId source) {
  FrontierBfs runner{g};
  return runner.run(source);  // copies the stored result out
}

BfsRunner::BfsRunner(const Graph& g)
    : impl_(std::make_unique<FrontierBfs>(g)) {}

BfsRunner::~BfsRunner() = default;
BfsRunner::BfsRunner(BfsRunner&&) noexcept = default;
BfsRunner& BfsRunner::operator=(BfsRunner&&) noexcept = default;

const BfsResult& BfsRunner::run(VertexId source) { return impl_->run(source); }

}  // namespace sntrust

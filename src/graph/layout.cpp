#include "graph/layout.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"

namespace sntrust {

namespace {

/// Runtime override of the process-wide layout; -1 = none.
std::atomic<int> g_layout_override{-1};

int env_layout() {
  static const int layout = [] {
    const std::optional<GraphLayout> parsed =
        parse_graph_layout(env_string("SNTRUST_LAYOUT", "plain"));
    return static_cast<int>(parsed.value_or(GraphLayout::kPlain));
  }();
  return layout;
}

}  // namespace

std::string to_string(GraphLayout layout) {
  switch (layout) {
    case GraphLayout::kPlain: return "plain";
    case GraphLayout::kHilo: return "hilo";
    case GraphLayout::kCompressed: return "compressed";
  }
  return "?";
}

std::optional<GraphLayout> parse_graph_layout(const std::string& text) {
  std::string value{text};
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (value == "plain") return GraphLayout::kPlain;
  if (value == "hilo") return GraphLayout::kHilo;
  if (value == "compressed") return GraphLayout::kCompressed;
  return std::nullopt;
}

GraphLayout graph_layout() {
  const int override_layout = g_layout_override.load(std::memory_order_relaxed);
  if (override_layout >= 0) return static_cast<GraphLayout>(override_layout);
  return static_cast<GraphLayout>(env_layout());
}

void set_graph_layout(GraphLayout layout) {
  g_layout_override.store(static_cast<int>(layout), std::memory_order_relaxed);
}

void clear_graph_layout_override() {
  g_layout_override.store(-1, std::memory_order_relaxed);
}

ScopedGraphLayout::ScopedGraphLayout(GraphLayout layout)
    : previous_(g_layout_override.load(std::memory_order_relaxed)) {
  set_graph_layout(layout);
}

ScopedGraphLayout::~ScopedGraphLayout() {
  g_layout_override.store(previous_, std::memory_order_relaxed);
}

VertexId hilo_degree_cutoff() {
  static const VertexId cutoff = static_cast<VertexId>(
      std::max<std::int64_t>(1, env_int("SNTRUST_LAYOUT_HILO_CUTOFF", 4)));
  return cutoff;
}

RelabelMap degree_order(const Graph& g) {
  const VertexId n = g.num_vertices();
  RelabelMap map;
  map.to_external.resize(n);
  std::iota(map.to_external.begin(), map.to_external.end(), VertexId{0});
  // Descending degree, ties ascending by external id: a total order, so the
  // permutation is deterministic (no stable_sort needed).
  std::sort(map.to_external.begin(), map.to_external.end(),
            [&](VertexId a, VertexId b) {
              const VertexId da = g.degree_unchecked(a);
              const VertexId db = g.degree_unchecked(b);
              if (da != db) return da > db;
              return a < b;
            });
  map.to_internal.resize(n);
  for (VertexId iv = 0; iv < n; ++iv)
    map.to_internal[map.to_external[iv]] = iv;
  return map;
}

void append_uvarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

const std::uint8_t* decode_uvarint(const std::uint8_t* p,
                                   std::uint64_t& value) noexcept {
  std::uint64_t result = 0;
  unsigned shift = 0;
  while (*p & 0x80) {
    result |= static_cast<std::uint64_t>(*p & 0x7f) << shift;
    shift += 7;
    ++p;
  }
  value = result | (static_cast<std::uint64_t>(*p) << shift);
  return p + 1;
}

std::shared_ptr<const LayoutData> LayoutData::build(const Graph& g,
                                                    GraphLayout layout) {
  if (layout == GraphLayout::kPlain)
    throw std::invalid_argument("LayoutData::build: plain has no engine");
  const obs::Span span{"layout.build", "graph"};

  auto data = std::shared_ptr<LayoutData>(new LayoutData());
  data->layout_ = layout;
  data->map_ = degree_order(g);
  const VertexId n = g.num_vertices();
  data->num_targets_ = g.targets().size();

  data->int_degree_.resize(n);
  data->degree_double_.resize(n);
  for (VertexId iv = 0; iv < n; ++iv) {
    const VertexId deg = g.degree_unchecked(data->map_.to_external[iv]);
    data->int_degree_[iv] = deg;
    data->degree_double_[iv] = static_cast<double>(deg);
  }

  // hilo keeps the raw prefix of rows with degree >= cutoff; degrees are
  // descending in internal order, so the prefix property holds by
  // construction. compressed packs everything.
  VertexId hi = 0;
  if (layout == GraphLayout::kHilo) {
    const VertexId cutoff = hilo_degree_cutoff();
    while (hi < n && data->int_degree_[hi] >= cutoff) ++hi;
  }
  data->hi_count_ = hi;

  data->hi_offsets_.assign(hi + 1, 0);
  for (VertexId iv = 0; iv < hi; ++iv)
    data->hi_offsets_[iv + 1] = data->hi_offsets_[iv] + data->int_degree_[iv];
  data->hi_targets_.resize(data->hi_offsets_[hi]);

  data->lo_offsets_.assign(n - hi + 1, 0);
  EdgeIndex lo_degree_total = 0;
  for (VertexId iv = hi; iv < n; ++iv) lo_degree_total += data->int_degree_[iv];
  // Varint bytes per target are bounded by 5 (32-bit ids zigzagged fit in
  // 35 bits); reserving the common case (short deltas) avoids rehashing.
  data->blob_.reserve(lo_degree_total * 2);

  const auto& to_internal = data->map_.to_internal;
  for (VertexId iv = 0; iv < n; ++iv) {
    const VertexId v = data->map_.to_external[iv];
    const std::span<const VertexId> row = g.neighbors_unchecked(v);
    if (iv < hi) {
      VertexId* out = data->hi_targets_.data() + data->hi_offsets_[iv];
      for (const VertexId w : row) *out++ = to_internal[w];
    } else {
      std::int64_t prev = 0;
      for (const VertexId w : row) {
        const std::int64_t value = static_cast<std::int64_t>(to_internal[w]);
        append_uvarint(data->blob_, zigzag_encode(value - prev));
        prev = value;
      }
      data->lo_offsets_[iv - hi + 1] = data->blob_.size();
    }
  }
  data->blob_.shrink_to_fit();

  obs::count("layout.builds", 1);
  obs::count("layout.adjacency_bytes", data->adjacency_bytes());
  return data;
}

std::uint64_t LayoutData::adjacency_bytes() const noexcept {
  return hi_targets_.size() * sizeof(VertexId) +
         hi_offsets_.size() * sizeof(EdgeIndex) +
         lo_offsets_.size() * sizeof(EdgeIndex) + blob_.size();
}

}  // namespace sntrust

// Immutable compressed-sparse-row representation of a simple undirected
// unweighted graph — the graph model of Sec. III-A of the paper.
//
// Vertices are dense ids 0..n-1. Each undirected edge {u,v} is stored twice
// (once in each endpoint's adjacency span); adjacency spans are sorted, which
// lets neighbour tests run in O(log deg) and makes iteration order
// deterministic.
//
// Storage is decoupled from the view: a Graph either owns its CSR arrays
// (built from vectors, fully validated) or adopts externally owned memory —
// the zero-copy mmap snapshot path (graph/snapshot.hpp), where a keepalive
// handle pins the mapping for the graph's lifetime and integrity comes from
// the snapshot CRC instead of the O(m log deg) structural validation.
// Copies are shallow: they share the storage and the per-graph caches
// (structural fingerprint, layout engines), so passing a Graph by value is
// cheap and never duplicates a multi-GB adjacency.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace sntrust {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;

/// An undirected edge as an unordered pair; builders normalize u <= v.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Physical layout of the hot-loop adjacency substrate (graph/layout.hpp).
/// kPlain is the external-id CSR itself — the correctness oracle; the other
/// layouts relabel vertices by descending degree and back their rows with
/// raw or varint-compressed storage. Selected process-wide via
/// SNTRUST_LAYOUT; every layout produces bitwise-identical measured results.
enum class GraphLayout : int {
  kPlain = 0,       ///< external-id CSR, no relabeling (default, oracle)
  kHilo = 1,        ///< degree-ordered; hub rows raw, low-degree tail varint
  kCompressed = 2,  ///< degree-ordered; every row varint-delta compressed
};

class LayoutData;   // graph/layout.hpp
struct GraphAux;    // internal per-graph cache block (graph.cpp)

class Graph {
 public:
  /// Empty graph (0 vertices).
  Graph();

  /// Builds from CSR arrays. `offsets` has n+1 entries; `targets[offsets[v] ..
  /// offsets[v+1])` are v's neighbours, sorted ascending. Validated; throws
  /// std::invalid_argument on malformed input (unsorted spans, self loops,
  /// duplicate neighbours, asymmetric adjacency, out-of-range targets).
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets);

  /// Zero-copy view over externally owned CSR arrays; `keepalive` pins the
  /// backing memory (an mmap) for the graph's lifetime. `deep_validate`
  /// runs the full structural validation; snapshot loads pass false and
  /// rely on the format CRC, so only the O(1) header invariants are checked
  /// (throws std::invalid_argument when they fail).
  static Graph adopt(std::span<const EdgeIndex> offsets,
                     std::span<const VertexId> targets,
                     std::shared_ptr<const void> keepalive,
                     bool deep_validate = false);

  /// Number of vertices n.
  VertexId num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  EdgeIndex num_edges() const noexcept { return targets_.size() / 2; }

  /// deg(v). Precondition: v < num_vertices().
  VertexId degree(VertexId v) const {
    check_vertex(v);
    return degree_unchecked(v);
  }

  /// Sorted neighbour span of v. Precondition: v < num_vertices().
  std::span<const VertexId> neighbors(VertexId v) const {
    check_vertex(v);
    return neighbors_unchecked(v);
  }

  /// Unchecked accessors for O(m·t) inner loops: the precondition is an
  /// assert in debug builds and undefined behaviour in release. API
  /// boundaries keep the checked versions.
  VertexId degree_unchecked(VertexId v) const noexcept {
    assert(v < num_vertices());
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }
  std::span<const VertexId> neighbors_unchecked(VertexId v) const noexcept {
    assert(v < num_vertices());
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  /// True when {u,v} is an edge. O(log deg(u)).
  bool has_edge(VertexId u, VertexId v) const;

  /// All undirected edges, each once with u < v, in ascending order.
  std::vector<Edge> edges() const;

  /// Raw CSR arrays (for serialization and operators that walk the whole
  /// adjacency structure in one pass). Spans stay valid for the lifetime of
  /// any Graph sharing this storage.
  std::span<const EdgeIndex> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> targets() const noexcept { return targets_; }

  /// Structural equality (same CSR contents, regardless of storage backend).
  friend bool operator==(const Graph& a, const Graph& b);

  /// Structural fingerprint (splitmix64 chain over sizes + CSR contents) —
  /// the value exec::graph_fingerprint keys checkpoints with. Computed once
  /// and cached across copies; snapshot loads seed the cache from the
  /// verified header so a mapped multi-GB graph never pays the O(n + m)
  /// rescan, and checkpoints key identically across the parse and mmap
  /// load paths.
  std::uint64_t fingerprint() const;
  std::optional<std::uint64_t> cached_fingerprint() const;
  void set_cached_fingerprint(std::uint64_t fingerprint) const;

  /// The layout engine for this graph, built lazily on first acquisition
  /// and cached (shared across copies). Returns nullptr for kPlain — the
  /// graph itself is the plain layout. See graph/layout.hpp.
  std::shared_ptr<const LayoutData> layout(GraphLayout which) const;

 private:
  Graph(std::span<const EdgeIndex> offsets, std::span<const VertexId> targets,
        std::shared_ptr<const void> storage, bool deep_validate);

  void check_vertex(VertexId v) const;
  void validate() const;
  void validate_header() const;

  std::span<const EdgeIndex> offsets_;
  std::span<const VertexId> targets_;
  std::shared_ptr<const void> storage_;  ///< owns vectors or pins an mmap
  std::shared_ptr<GraphAux> aux_;        ///< fingerprint + layout caches
};

}  // namespace sntrust

// Immutable compressed-sparse-row representation of a simple undirected
// unweighted graph — the graph model of Sec. III-A of the paper.
//
// Vertices are dense ids 0..n-1. Each undirected edge {u,v} is stored twice
// (once in each endpoint's adjacency span); adjacency spans are sorted, which
// lets neighbour tests run in O(log deg) and makes iteration order
// deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sntrust {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;

/// An undirected edge as an unordered pair; builders normalize u <= v.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  /// Empty graph (0 vertices).
  Graph() = default;

  /// Builds from CSR arrays. `offsets` has n+1 entries; `targets[offsets[v] ..
  /// offsets[v+1])` are v's neighbours, sorted ascending. Validated; throws
  /// std::invalid_argument on malformed input (unsorted spans, self loops,
  /// duplicate neighbours, asymmetric adjacency, out-of-range targets).
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets);

  /// Number of vertices n.
  VertexId num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  EdgeIndex num_edges() const noexcept { return targets_.size() / 2; }

  /// deg(v). Precondition: v < num_vertices().
  VertexId degree(VertexId v) const {
    check_vertex(v);
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbour span of v. Precondition: v < num_vertices().
  std::span<const VertexId> neighbors(VertexId v) const {
    check_vertex(v);
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// True when {u,v} is an edge. O(log deg(u)).
  bool has_edge(VertexId u, VertexId v) const;

  /// All undirected edges, each once with u < v, in ascending order.
  std::vector<Edge> edges() const;

  /// Raw CSR arrays (for serialization and operators that walk the whole
  /// adjacency structure in one pass).
  const std::vector<EdgeIndex>& offsets() const noexcept { return offsets_; }
  const std::vector<VertexId>& targets() const noexcept { return targets_; }

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  void check_vertex(VertexId v) const;
  void validate() const;

  std::vector<EdgeIndex> offsets_{0};
  std::vector<VertexId> targets_;
};

}  // namespace sntrust

// Breadth-first traversal primitives shared by the expansion, diameter and
// defense modules.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// Sentinel distance for vertices unreachable from the BFS source.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// Result of a single-source BFS.
struct BfsResult {
  VertexId source = 0;
  /// dist[v] = hop distance from source, or kUnreachable.
  std::vector<std::uint32_t> distances;
  /// level_sizes[i] = number of vertices at distance exactly i (L_i in the
  /// paper's Eq. 4); level_sizes[0] == 1.
  std::vector<std::uint64_t> level_sizes;
  /// Eccentricity of the source within its component (= level count - 1).
  std::uint32_t eccentricity = 0;
  /// Number of vertices reached (including the source).
  std::uint64_t reached = 0;
};

/// Full BFS from `source`. Throws std::out_of_range for a bad source.
BfsResult bfs(const Graph& g, VertexId source);

/// Reusable BFS workspace: avoids reallocating the distance array when many
/// sources are swept over the same graph (the expansion measurement does one
/// BFS per vertex).
class BfsRunner {
 public:
  explicit BfsRunner(const Graph& g);

  /// Runs BFS from `source`; the returned reference is invalidated by the
  /// next run() call.
  const BfsResult& run(VertexId source);

 private:
  const Graph& graph_;
  std::vector<std::uint32_t> epoch_seen_;  // epoch marking instead of reset
  std::uint32_t epoch_ = 0;
  std::vector<VertexId> queue_;
  BfsResult result_;
};

}  // namespace sntrust

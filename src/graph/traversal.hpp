// Breadth-first traversal primitives shared by the expansion, diameter and
// defense modules.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// Sentinel distance for vertices unreachable from the BFS source.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// Result of a single-source BFS.
struct BfsResult {
  VertexId source = 0;
  /// dist[v] = hop distance from source, or kUnreachable.
  std::vector<std::uint32_t> distances;
  /// level_sizes[i] = number of vertices at distance exactly i (L_i in the
  /// paper's Eq. 4); level_sizes[0] == 1.
  std::vector<std::uint64_t> level_sizes;
  /// Eccentricity of the source within its component (= level count - 1).
  std::uint32_t eccentricity = 0;
  /// Number of vertices reached (including the source).
  std::uint64_t reached = 0;
};

/// Full BFS from `source`. Throws std::out_of_range for a bad source.
BfsResult bfs(const Graph& g, VertexId source);

class FrontierBfs;

/// Reusable BFS workspace: avoids reallocating the distance array when many
/// sources are swept over the same graph (the expansion measurement does one
/// BFS per vertex). Since the frontier-kernel work this delegates to the
/// direction-optimizing FrontierBfs (graph/frontier_bfs.hpp); the BfsResult
/// contract is unchanged because distances, level sizes and reach counts are
/// level-synchronous invariants independent of traversal direction.
class BfsRunner {
 public:
  explicit BfsRunner(const Graph& g);
  ~BfsRunner();
  BfsRunner(BfsRunner&&) noexcept;
  BfsRunner& operator=(BfsRunner&&) noexcept;

  /// Runs BFS from `source`; the returned reference is invalidated by the
  /// next run() call.
  const BfsResult& run(VertexId source);

 private:
  std::unique_ptr<FrontierBfs> impl_;
};

}  // namespace sntrust

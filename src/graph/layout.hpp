// Degree-ordered, optionally compressed adjacency layouts — the hot-loop
// substrate behind SNTRUST_LAYOUT.
//
// The paper's measurement loops (distribution-evolution matvecs, frontier
// gathers, direction-optimizing BFS) are bound by random access into
// n-sized state vectors indexed by the *target* vertex of each edge. Social
// graphs are heavy-tailed: a small hub prefix absorbs most edge endpoints,
// so relabeling vertices by descending degree packs the hot entries of
// every such vector into a cache-resident prefix. On top of the relabeled
// id space two storage backends trade memory for access cost:
//
//   hilo        hub rows (degree >= hilo cutoff) stay raw uint32 arrays with
//               O(1) random access; the long low-degree tail is packed as
//               zigzag-varint deltas (tail neighbours are mostly hubs =
//               small internal ids, so deltas are short),
//   compressed  every row varint-packed — smallest footprint, decode on
//               every touch.
//
// Determinism contract (extends DESIGN §8/§10): each relabeled row stores
// its targets in the *external-ascending* order of the plain CSR, only
// renumbered. A gather over the row therefore adds exactly the same doubles
// in exactly the same sequence as the plain kernel, so every layout (and
// every thread count) produces bitwise-identical measured results; results
// are mapped back to external ids before any reduction. The plain layout is
// the correctness oracle and stays the default.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

std::string to_string(GraphLayout layout);
/// Parses "plain" / "hilo" / "compressed" (case-insensitive).
std::optional<GraphLayout> parse_graph_layout(const std::string& text);

/// Process-wide layout: the runtime override if set, else SNTRUST_LAYOUT
/// (default plain).
GraphLayout graph_layout();
/// Runtime override of the process-wide layout (tests, --layout).
void set_graph_layout(GraphLayout layout);
/// Drops the runtime override, restoring the SNTRUST_LAYOUT default.
void clear_graph_layout_override();

/// RAII layout override; restores the previous state on destruction.
class ScopedGraphLayout {
 public:
  explicit ScopedGraphLayout(GraphLayout layout);
  ~ScopedGraphLayout();
  ScopedGraphLayout(const ScopedGraphLayout&) = delete;
  ScopedGraphLayout& operator=(const ScopedGraphLayout&) = delete;

 private:
  int previous_;  // encoded previous override (-1 = none)
};

/// Degree cutoff for the hilo split: internal rows with degree >= cutoff
/// stay raw. SNTRUST_LAYOUT_HILO_CUTOFF (default 4, min 1). The default is
/// tuned with bench/micro_layout: raw-row gathers run at memory speed while
/// varint decode costs ~3x per edge, so only the degree <= 3 tail (where a
/// row fits in one cache line regardless) trades decode cost for footprint.
VertexId hilo_degree_cutoff();

/// External <-> internal vertex renumbering. Internal ids order vertices by
/// descending degree, ties broken by ascending external id — a total order,
/// so the map is deterministic for a given graph.
struct RelabelMap {
  std::vector<VertexId> to_internal;  ///< external id -> internal id
  std::vector<VertexId> to_external;  ///< internal id -> external id
};

/// Builds the degree-descending relabeling of `g`.
RelabelMap degree_order(const Graph& g);

// Unsigned LEB128 varint + zigzag codec (exposed for tests).
void append_uvarint(std::vector<std::uint8_t>& out, std::uint64_t value);
const std::uint8_t* decode_uvarint(const std::uint8_t* p,
                                   std::uint64_t& value) noexcept;
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Immutable layout engine built from a Graph (acquired via Graph::layout(),
/// which caches one instance per layout across all copies of the graph).
/// All row accessors take *internal* ids and yield *internal* target ids in
/// the row's external-ascending source order.
class LayoutData {
 public:
  /// Builds the engine; `layout` must not be kPlain.
  static std::shared_ptr<const LayoutData> build(const Graph& g,
                                                 GraphLayout layout);

  GraphLayout layout() const noexcept { return layout_; }
  VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(int_degree_.size());
  }
  EdgeIndex num_targets() const noexcept { return num_targets_; }
  const RelabelMap& map() const noexcept { return map_; }

  /// deg of internal vertex iv (layout-invariant: relabeling permutes,
  /// never changes, degrees).
  VertexId int_degree(VertexId iv) const noexcept { return int_degree_[iv]; }
  /// Degrees as doubles, for the matvec divide (int -> double is exact).
  const std::vector<double>& degree_double() const noexcept {
    return degree_double_;
  }

  /// Number of leading internal ids whose rows are stored raw.
  VertexId hi_count() const noexcept { return hi_count_; }
  /// Raw row of internal id iv < hi_count().
  std::span<const VertexId> hi_row(VertexId iv) const noexcept {
    return {hi_targets_.data() + hi_offsets_[iv],
            hi_targets_.data() + hi_offsets_[iv + 1]};
  }

  /// Fused row iteration: f(internal_target) per neighbour, in the row's
  /// stored order. Compressed rows decode inline — no scratch buffer.
  template <typename F>
  void for_each_target(VertexId iv, F&& f) const {
    if (iv < hi_count_) {
      for (const VertexId w : hi_row(iv)) f(w);
      return;
    }
    const std::uint8_t* p = blob_.data() + lo_offsets_[iv - hi_count_];
    const std::uint8_t* const end =
        blob_.data() + lo_offsets_[iv - hi_count_ + 1];
    std::int64_t value = 0;
    while (p < end) {
      std::uint64_t raw;
      p = decode_uvarint(p, raw);
      value += zigzag_decode(raw);
      f(static_cast<VertexId>(value));
    }
  }

  /// Early-exit row scan: returns true at the first neighbour for which
  /// pred(internal_target) is true (stops decoding there), else false.
  template <typename Pred>
  bool any_target(VertexId iv, Pred&& pred) const {
    if (iv < hi_count_) {
      for (const VertexId w : hi_row(iv))
        if (pred(w)) return true;
      return false;
    }
    const std::uint8_t* p = blob_.data() + lo_offsets_[iv - hi_count_];
    const std::uint8_t* const end =
        blob_.data() + lo_offsets_[iv - hi_count_ + 1];
    std::int64_t value = 0;
    while (p < end) {
      std::uint64_t raw;
      p = decode_uvarint(p, raw);
      value += zigzag_decode(raw);
      if (pred(static_cast<VertexId>(value))) return true;
    }
    return false;
  }

  /// Adjacency bytes this layout holds (raw rows + varint blob + offsets);
  /// the plain CSR costs 4 bytes per target + 8 per offset entry.
  std::uint64_t adjacency_bytes() const noexcept;

 private:
  LayoutData() = default;

  GraphLayout layout_ = GraphLayout::kHilo;
  RelabelMap map_;
  EdgeIndex num_targets_ = 0;

  std::vector<VertexId> int_degree_;    // by internal id
  std::vector<double> degree_double_;   // by internal id

  VertexId hi_count_ = 0;
  std::vector<EdgeIndex> hi_offsets_;   // hi_count_ + 1 entries
  std::vector<VertexId> hi_targets_;

  std::vector<EdgeIndex> lo_offsets_;   // byte offsets, n - hi_count_ + 1
  std::vector<std::uint8_t> blob_;      // zigzag-varint row payloads
};

}  // namespace sntrust

#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sntrust {

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u >= num_vertices_ || v >= num_vertices_)
    throw std::out_of_range("GraphBuilder::add_edge: endpoint out of range");
  if (u == v) return;
  if (u > v) std::swap(u, v);
  pairs_.push_back({u, v});
}

Graph GraphBuilder::build() const {
  std::vector<Edge> edges = pairs_;
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const VertexId n = num_vertices_;
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<VertexId> targets(edges.size() * 2);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    targets[cursor[e.u]++] = e.v;
    targets[cursor[e.v]++] = e.u;
  }
  // Each span was filled in ascending edge order for the u side but the v
  // side interleaves, so sort every span (spans are short; total O(m log d)).
  for (VertexId v = 0; v < n; ++v)
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));

  return Graph{std::move(offsets), std::move(targets)};
}

Graph graph_from_edges(VertexId num_vertices, const std::vector<Edge>& edges) {
  GraphBuilder b{num_vertices};
  b.reserve(edges.size());
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

}  // namespace sntrust

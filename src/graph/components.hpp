// Connected components and largest-component extraction.
//
// The paper's measurements (mixing, expansion, Sybil defenses) are defined on
// a connected graph; datasets are reduced to their largest connected
// component exactly as in the authors' prior IMC'10 methodology.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace sntrust {

struct Components {
  /// component_of[v] = dense component id in [0, count).
  std::vector<std::uint32_t> component_of;
  /// sizes[c] = vertex count of component c.
  std::vector<std::uint64_t> sizes;

  std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(sizes.size());
  }
  /// Id of the largest component (ties broken by lowest id).
  std::uint32_t largest() const;
};

/// Labels every vertex with its connected component (iterative BFS, O(n+m)).
Components connected_components(const Graph& g);

/// Induced subgraph on the largest connected component, with the id mapping.
ExtractedGraph largest_component(const Graph& g);

/// True when g is connected (n == 0 counts as connected).
bool is_connected(const Graph& g);

}  // namespace sntrust

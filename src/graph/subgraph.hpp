// Induced-subgraph extraction with id remapping.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// An induced subgraph together with the mapping back to the parent graph.
struct ExtractedGraph {
  Graph graph;
  /// original_id[new_id] = vertex id in the source graph.
  std::vector<VertexId> original_id;
};

/// Induced subgraph on `members` (must be distinct, in-range vertex ids;
/// throws std::invalid_argument otherwise). New ids are assigned in the order
/// vertices appear in `members`.
ExtractedGraph induced_subgraph(const Graph& g,
                                std::span<const VertexId> members);

}  // namespace sntrust

#include "graph/subgraph.hpp"

#include <stdexcept>

#include "graph/builder.hpp"

namespace sntrust {

ExtractedGraph induced_subgraph(const Graph& g,
                                std::span<const VertexId> members) {
  const VertexId n = g.num_vertices();
  constexpr VertexId kAbsent = 0xFFFFFFFFu;
  std::vector<VertexId> new_id(n, kAbsent);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const VertexId v = members[i];
    if (v >= n)
      throw std::invalid_argument("induced_subgraph: member out of range");
    if (new_id[v] != kAbsent)
      throw std::invalid_argument("induced_subgraph: duplicate member");
    new_id[v] = static_cast<VertexId>(i);
  }

  GraphBuilder builder{static_cast<VertexId>(members.size())};
  for (const VertexId v : members) {
    for (const VertexId w : g.neighbors(v)) {
      if (new_id[w] != kAbsent && v < w)
        builder.add_edge(new_id[v], new_id[w]);
    }
  }
  return {builder.build(), {members.begin(), members.end()}};
}

}  // namespace sntrust

#include "graph/components.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/subgraph.hpp"

namespace sntrust {

std::uint32_t Components::largest() const {
  if (sizes.empty()) throw std::logic_error("Components::largest: empty graph");
  return static_cast<std::uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

Components connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  Components out;
  out.component_of.assign(n, 0xFFFFFFFFu);

  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  std::vector<VertexId> queue;
  queue.reserve(n);

  for (VertexId start = 0; start < n; ++start) {
    if (out.component_of[start] != 0xFFFFFFFFu) continue;
    const auto cid = static_cast<std::uint32_t>(out.sizes.size());
    out.sizes.push_back(0);
    queue.clear();
    queue.push_back(start);
    out.component_of[start] = cid;
    std::size_t head = 0;
    while (head < queue.size()) {
      const VertexId u = queue[head++];
      ++out.sizes[cid];
      for (EdgeIndex i = offsets[u]; i < offsets[u + 1]; ++i) {
        const VertexId w = targets[i];
        if (out.component_of[w] == 0xFFFFFFFFu) {
          out.component_of[w] = cid;
          queue.push_back(w);
        }
      }
    }
  }
  return out;
}

ExtractedGraph largest_component(const Graph& g) {
  if (g.num_vertices() == 0) return {Graph{}, {}};
  const Components comps = connected_components(g);
  const std::uint32_t keep = comps.largest();
  std::vector<VertexId> members;
  members.reserve(comps.sizes[keep]);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (comps.component_of[v] == keep) members.push_back(v);
  return induced_subgraph(g, members);
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count() == 1;
}

}  // namespace sntrust

// Direction-optimizing breadth-first search (Beamer-style): level-synchronous
// BFS that processes each level either top-down (scan the frontier's
// adjacency) or bottom-up (scan the remaining unvisited vertices and stop at
// the first frontier neighbour). On the low-diameter social graphs this repo
// measures, the middle levels hold most of the graph, and the bottom-up pass
// skips the bulk of their edges — the expansion envelopes (Eq. 4), the
// diameter sweeps, and GateKeeper's per-distributer ticket BFS all run one
// BFS per source over the whole graph.
//
// The switch only changes which edges are *inspected*: discovered distances,
// level sizes, eccentricity, and reach counts are level-synchronous
// invariants, so results are identical to the plain queue BFS for any
// heuristic setting.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "graph/layout.hpp"
#include "graph/traversal.hpp"

namespace sntrust {

/// Reusable direction-optimizing BFS workspace. Construction is O(n); every
/// run() reuses the epoch-marked arrays, so sweeping many sources costs no
/// allocations after the first run.
class FrontierBfs {
 public:
  struct Options {
    /// Switch a level to bottom-up when the frontier's summed degree exceeds
    /// (unexplored degree) / alpha. Beamer's alpha = 14; large values force
    /// bottom-up, 0 disables it (always top-down).
    std::uint64_t alpha = 14;
    /// Switch back to top-down when the frontier shrinks below n / beta.
    /// Beamer's beta = 24; large values keep bottom-up until exhaustion.
    std::uint64_t beta = 24;
    /// Adjacency substrate (graph/layout.hpp): plain sweeps the CSR in
    /// external id space; the degree-ordered layouts run the whole BFS in
    /// internal id space (hub-first bottom-up scans, compressed rows) and
    /// remap distances on the way out. Results are identical — distances,
    /// level sizes, and reach are level-synchronous invariants.
    GraphLayout layout = GraphLayout::kPlain;
  };

  explicit FrontierBfs(const Graph& g);
  FrontierBfs(const Graph& g, const Options& options);

  /// Runs BFS from `source`; the returned reference is invalidated by the
  /// next run() call. Throws std::out_of_range for a bad source.
  const BfsResult& run(VertexId source);

 private:
  bool want_bottom_up(bool bottom_up) const;
  void ensure_unvisited_list();
  void top_down_level(std::uint32_t depth);
  void bottom_up_level(std::uint32_t depth);

  const Graph& graph_;
  Options options_;
  std::shared_ptr<const LayoutData> layout_;  // engaged when layout != plain
  /// Distances by internal id (layout mode); remapped into result_ at the
  /// end of run(). Plain mode writes result_.distances directly.
  std::vector<std::uint32_t> dist_int_;
  std::vector<std::uint32_t> epoch_seen_;  // epoch marking instead of reset
  std::uint32_t epoch_ = 0;
  std::vector<VertexId> frontier_, next_frontier_;
  /// Superset of the unvisited vertices, ascending; materialized lazily on
  /// the first bottom-up level of a run and compacted as levels claim
  /// vertices.
  std::vector<VertexId> unvisited_;
  bool unvisited_valid_ = false;
  EdgeIndex frontier_degree_ = 0;    // summed degree of the frontier
  EdgeIndex unexplored_degree_ = 0;  // summed degree of unvisited vertices
  BfsResult result_;
};

}  // namespace sntrust

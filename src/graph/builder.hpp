// Mutable edge-list accumulator that produces an immutable CSR Graph.
//
// The builder enforces the paper's graph model: self loops are dropped and
// parallel edges are collapsed, so the result is always simple, undirected
// and unweighted regardless of what the caller feeds in.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex universe 0..n-1 up front.
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  VertexId num_vertices() const noexcept { return num_vertices_; }

  /// Records the undirected edge {u,v}. Self loops (u==v) are silently
  /// ignored; duplicates are collapsed at build() time. Throws
  /// std::out_of_range if an endpoint is >= num_vertices().
  void add_edge(VertexId u, VertexId v);

  /// Reserve capacity for `edges` undirected edges.
  void reserve(std::size_t edges) { pairs_.reserve(edges); }

  /// Number of (deduplicated-later) edge records so far.
  std::size_t pending_edges() const noexcept { return pairs_.size(); }

  /// Produces the CSR graph. The builder may be reused afterwards (it keeps
  /// its edge list).
  Graph build() const;

 private:
  VertexId num_vertices_;
  std::vector<Edge> pairs_;  // normalized u < v
};

/// Convenience: build a graph straight from an edge list.
Graph graph_from_edges(VertexId num_vertices, const std::vector<Edge>& edges);

}  // namespace sntrust

#include "graph/frontier_bfs.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace sntrust {

FrontierBfs::FrontierBfs(const Graph& g)
    : FrontierBfs(g, Options{14, 24, graph_layout()}) {}

FrontierBfs::FrontierBfs(const Graph& g, const Options& options)
    : graph_(g), options_(options), epoch_seen_(g.num_vertices(), 0) {
  if (options.layout != GraphLayout::kPlain) {
    layout_ = g.layout(options.layout);
    dist_int_.assign(g.num_vertices(), kUnreachable);
  }
  frontier_.reserve(g.num_vertices());
  next_frontier_.reserve(g.num_vertices());
  result_.distances.assign(g.num_vertices(), kUnreachable);
}

bool FrontierBfs::want_bottom_up(bool bottom_up) const {
  if (options_.alpha == 0) return false;
  if (bottom_up)  // stay until the frontier is small again
    return options_.beta != 0 &&
           frontier_.size() >= graph_.num_vertices() / options_.beta;
  return frontier_degree_ > unexplored_degree_ / options_.alpha;
}

void FrontierBfs::ensure_unvisited_list() {
  if (unvisited_valid_) return;
  unvisited_.clear();
  for (VertexId v = 0; v < graph_.num_vertices(); ++v)
    if (epoch_seen_[v] != epoch_) unvisited_.push_back(v);
  unvisited_valid_ = true;
}

void FrontierBfs::top_down_level(std::uint32_t depth) {
  next_frontier_.clear();
  frontier_degree_ = 0;
  if (layout_) {
    const LayoutData& layout = *layout_;
    for (const VertexId u : frontier_) {
      layout.for_each_target(u, [&](VertexId w) {
        if (epoch_seen_[w] != epoch_) {
          epoch_seen_[w] = epoch_;
          dist_int_[w] = depth + 1;
          next_frontier_.push_back(w);
          const EdgeIndex degree = layout.int_degree(w);
          frontier_degree_ += degree;
          unexplored_degree_ -= degree;
        }
      });
    }
    return;
  }
  const auto offsets = graph_.offsets();
  const auto targets = graph_.targets();
  for (const VertexId u : frontier_) {
    for (EdgeIndex i = offsets[u]; i < offsets[u + 1]; ++i) {
      const VertexId w = targets[i];
      if (epoch_seen_[w] != epoch_) {
        epoch_seen_[w] = epoch_;
        result_.distances[w] = depth + 1;
        next_frontier_.push_back(w);
        const EdgeIndex degree = offsets[w + 1] - offsets[w];
        frontier_degree_ += degree;
        unexplored_degree_ -= degree;
      }
    }
  }
}

void FrontierBfs::bottom_up_level(std::uint32_t depth) {
  next_frontier_.clear();
  frontier_degree_ = 0;
  std::size_t keep = 0;
  if (layout_) {
    // Internal ids are degree-descending, so unvisited tail vertices probe
    // hub-first — the frontier neighbour most likely to exist sits in the
    // cache-resident prefix, and any_target stops decoding at the hit.
    const LayoutData& layout = *layout_;
    for (const VertexId v : unvisited_) {
      if (epoch_seen_[v] == epoch_) continue;  // claimed earlier: drop
      const bool adjacent = layout.any_target(v, [&](VertexId w) {
        return epoch_seen_[w] == epoch_ && dist_int_[w] == depth;
      });
      if (adjacent) {
        epoch_seen_[v] = epoch_;
        dist_int_[v] = depth + 1;
        next_frontier_.push_back(v);
        const EdgeIndex degree = layout.int_degree(v);
        frontier_degree_ += degree;
        unexplored_degree_ -= degree;
      } else {
        unvisited_[keep++] = v;
      }
    }
    unvisited_.resize(keep);
    return;
  }
  const auto offsets = graph_.offsets();
  const auto targets = graph_.targets();
  for (const VertexId v : unvisited_) {
    if (epoch_seen_[v] == epoch_) continue;  // claimed earlier: drop
    bool adjacent = false;
    for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId w = targets[i];
      // Frontier membership: visited AND at the current depth (newly
      // claimed vertices carry depth + 1, so they never match).
      if (epoch_seen_[w] == epoch_ && result_.distances[w] == depth) {
        adjacent = true;
        break;
      }
    }
    if (adjacent) {
      epoch_seen_[v] = epoch_;
      result_.distances[v] = depth + 1;
      next_frontier_.push_back(v);
      const EdgeIndex degree = offsets[v + 1] - offsets[v];
      frontier_degree_ += degree;
      unexplored_degree_ -= degree;
    } else {
      unvisited_[keep++] = v;
    }
  }
  unvisited_.resize(keep);
}

const BfsResult& FrontierBfs::run(VertexId source) {
  if (source >= graph_.num_vertices())
    throw std::out_of_range("FrontierBfs::run: source out of range");
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: clear markers and restart epochs
    std::fill(epoch_seen_.begin(), epoch_seen_.end(), 0);
    epoch_ = 1;
  }

  result_.source = source;
  result_.level_sizes.clear();
  result_.reached = 0;

  // Layout mode runs the whole search in internal id space: the source maps
  // in here, distances map back out at the end.
  const VertexId start =
      layout_ ? layout_->map().to_internal[source] : source;
  frontier_.assign(1, start);
  epoch_seen_[start] = epoch_;
  if (layout_) {
    dist_int_[start] = 0;
    frontier_degree_ = layout_->int_degree(start);
  } else {
    result_.distances[start] = 0;
    frontier_degree_ = graph_.degree_unchecked(start);
  }
  unexplored_degree_ = graph_.targets().size() - frontier_degree_;
  unvisited_valid_ = false;

  // Local (non-static) handles: sweeps run BFS from pool workers.
  obs::Counter& top_down = obs::metrics_counter("bfs.top_down_levels");
  obs::Counter& bottom_up = obs::metrics_counter("bfs.bottom_up_levels");

  std::uint64_t reached = 1;
  std::uint32_t depth = 0;
  bool bottom_up_mode = false;
  while (!frontier_.empty()) {
    result_.level_sizes.push_back(frontier_.size());
    bottom_up_mode = want_bottom_up(bottom_up_mode);
    if (bottom_up_mode) {
      ensure_unvisited_list();
      bottom_up_level(depth);
      bottom_up.add(1);
    } else {
      top_down_level(depth);
      top_down.add(1);
    }
    reached += next_frontier_.size();
    frontier_.swap(next_frontier_);
    ++depth;
  }

  result_.reached = reached;
  result_.eccentricity =
      static_cast<std::uint32_t>(result_.level_sizes.size() - 1);
  // Mark unreached vertices lazily: distances[] still holds stale values
  // from previous runs for them, so fix them up only once per run. Layout
  // mode folds the external remap into the same O(n) pass.
  if (layout_) {
    const auto& to_external = layout_->map().to_external;
    for (VertexId iv = 0; iv < graph_.num_vertices(); ++iv)
      result_.distances[to_external[iv]] =
          epoch_seen_[iv] == epoch_ ? dist_int_[iv] : kUnreachable;
  } else {
    for (VertexId v = 0; v < graph_.num_vertices(); ++v)
      if (epoch_seen_[v] != epoch_) result_.distances[v] = kUnreachable;
  }
  return result_;
}

}  // namespace sntrust

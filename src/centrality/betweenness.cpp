#include <stdexcept>

#include "centrality/centrality.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

/// One Brandes accumulation pass from `source`: BFS computing shortest-path
/// counts, then dependency back-propagation in reverse BFS order.
void brandes_pass(const Graph& g, VertexId source, std::vector<double>& score,
                  std::vector<std::uint32_t>& dist,
                  std::vector<double>& sigma, std::vector<double>& delta,
                  std::vector<VertexId>& order) {
  constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
  const VertexId n = g.num_vertices();
  std::fill(dist.begin(), dist.end(), kUnset);
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  order.clear();

  dist[source] = 0;
  sigma[source] = 1.0;
  order.push_back(source);
  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  for (std::size_t head = 0; head < order.size(); ++head) {
    const VertexId v = order[head];
    for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e) {
      const VertexId w = targets[e];
      if (dist[w] == kUnset) {
        dist[w] = dist[v] + 1;
        order.push_back(w);
      }
      if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
    }
  }

  // Reverse order: accumulate dependencies.
  for (std::size_t i = order.size(); i-- > 1;) {
    const VertexId w = order[i];
    for (EdgeIndex e = offsets[w]; e < offsets[w + 1]; ++e) {
      const VertexId v = targets[e];
      if (dist[v] + 1 == dist[w])
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
    }
    score[w] += delta[w];
  }
  (void)n;
}

std::vector<VertexId> pick_sources(const Graph& g,
                                   const CentralityOptions& options) {
  const VertexId n = g.num_vertices();
  if (options.num_sources == 0 || options.num_sources >= n) {
    std::vector<VertexId> all(n);
    for (VertexId v = 0; v < n; ++v) all[v] = v;
    return all;
  }
  Rng rng{options.seed};
  return rng.sample_without_replacement(n, options.num_sources);
}

}  // namespace

std::vector<double> betweenness_centrality(const Graph& g,
                                           const CentralityOptions& options) {
  const VertexId n = g.num_vertices();
  std::vector<double> score(n, 0.0);
  if (n < 3) return score;

  const std::vector<VertexId> sources = pick_sources(g, options);
  std::vector<std::uint32_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<VertexId> order;
  order.reserve(n);
  for (const VertexId s : sources)
    brandes_pass(g, s, score, dist, sigma, delta, order);

  // Each unordered pair was counted twice over a full sweep (once per
  // endpoint as source); halve, and rescale sampled sweeps.
  const double rescale =
      static_cast<double>(n) / static_cast<double>(sources.size());
  for (double& value : score) value *= 0.5 * rescale;
  return score;
}

std::vector<double> normalize_betweenness(std::vector<double> values,
                                          VertexId n) {
  if (n < 3)
    throw std::invalid_argument("normalize_betweenness: need n >= 3");
  const double max_pairs =
      static_cast<double>(n - 1) * static_cast<double>(n - 2) / 2.0;
  for (double& value : values) value /= max_pairs;
  return values;
}

}  // namespace sntrust

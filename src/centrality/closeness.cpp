#include "centrality/centrality.hpp"
#include "graph/traversal.hpp"
#include "util/rng.hpp"

namespace sntrust {

std::vector<double> closeness_centrality(const Graph& g,
                                         const CentralityOptions& options) {
  const VertexId n = g.num_vertices();
  std::vector<double> score(n, 0.0);
  if (n < 2) return score;

  if (options.num_sources == 0 || options.num_sources >= n) {
    // Exact: closeness of v from its own BFS.
    BfsRunner runner{g};
    for (VertexId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) continue;
      const BfsResult& result = runner.run(v);
      std::uint64_t total = 0;
      for (std::size_t level = 1; level < result.level_sizes.size(); ++level)
        total += level * result.level_sizes[level];
      if (total > 0)
        score[v] = static_cast<double>(result.reached - 1) /
                   static_cast<double>(total);
    }
    return score;
  }

  // Sampled: accumulate distances from each vertex to the sampled sources
  // (BFS from a source gives the distance *to* every vertex; the graph is
  // undirected so that is also the distance from the vertex to the source).
  Rng rng{options.seed};
  const std::vector<std::uint32_t> sources_raw = rng.sample_without_replacement(
      n, options.num_sources);
  std::vector<std::uint64_t> distance_sum(n, 0);
  std::vector<std::uint32_t> reachable(n, 0);
  BfsRunner runner{g};
  for (const VertexId s : sources_raw) {
    const BfsResult& result = runner.run(s);
    for (VertexId v = 0; v < n; ++v) {
      if (result.distances[v] == kUnreachable || v == s) continue;
      distance_sum[v] += result.distances[v];
      ++reachable[v];
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (distance_sum[v] == 0) continue;  // no reachable sampled source
    // Inverse mean distance to the sampled sources (self excluded), the
    // standard sampled-closeness estimator.
    score[v] = static_cast<double>(reachable[v]) /
               static_cast<double>(distance_sum[v]);
  }
  return score;
}

}  // namespace sntrust

// Shortest-path centralities used by the trustworthy-computing primitives
// the paper's introduction surveys: node betweenness (Sybil defense of
// Quercia & Hailes; the authors' own betweenness measurement study) and
// closeness (content sharing / anonymity in OneSwarm-style systems).
//
// Exact computation is Brandes' algorithm, O(nm); for large graphs both
// centralities support uniform source sampling with the standard unbiased
// rescaling.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

struct CentralityOptions {
  /// Number of BFS sources; 0 = every vertex (exact).
  std::uint32_t num_sources = 0;
  std::uint64_t seed = 1;
};

/// Shortest-path betweenness of every vertex (unnormalized pair counts;
/// each unordered pair counted once). Sampled when num_sources > 0, with
/// results rescaled by n / num_sources so sampled values estimate the exact
/// ones.
std::vector<double> betweenness_centrality(const Graph& g,
                                           const CentralityOptions& options = {});

/// Closeness of every vertex: (n_reachable - 1) / sum of distances to
/// reachable vertices (0 for isolated vertices). Exact per-vertex values
/// need a full BFS from each vertex; sampling sources estimates the
/// *inverse farness to the sampled set*, rescaled the same way.
std::vector<double> closeness_centrality(const Graph& g,
                                         const CentralityOptions& options = {});

/// Normalizes betweenness to [0, 1] by dividing by (n-1)(n-2)/2 (the
/// maximum attainable, the star hub). Precondition: n >= 3.
std::vector<double> normalize_betweenness(std::vector<double> values,
                                          VertexId n);

}  // namespace sntrust
